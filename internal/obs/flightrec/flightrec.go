// Package flightrec is a bounded structured event ring — a flight recorder
// for the distributed sweep fabric. The coordinator and the workers record
// fabric lifecycle events (worker join/leave, lease grant/expiry/steal,
// stale uploads, merge conflicts, sweep start/finish/cancel) as they happen;
// a postmortem of a killed worker or a zombie delivery then reads the
// recorded sequence from GET /fleet/events (or a -flightrec dump) instead of
// scraping logs, and test harnesses assert against events instead of timing.
//
// Timestamps are dual: WallUTC for humans, UptimeSec measured on the
// monotonic clock since the recorder started — event ordering and spacing
// stay exact across wall-clock steps. Seq is a gapless per-recorder sequence
// number, so a reader can tell "ring wrapped" (Dropped > 0, seq gap at the
// front) from "nothing happened".
//
// The nil *Recorder is a valid no-op: Record on nil returns immediately and
// allocates nothing, so fabric hot paths call it unconditionally and pay
// only a nil check when flight recording is off.
package flightrec

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one recorded fabric lifecycle event. Kind is a small stable
// vocabulary ("worker:join", "lease:expire", "upload:stale", ...); the
// Worker/Sweep/Lease/Trace fields carry whichever correlation ids the event
// has, so a trace id links recorded events to the stitched span tree of the
// job they belong to.
type Event struct {
	Seq       uint64    `json:"seq"`
	WallUTC   time.Time `json:"wall_utc"`
	UptimeSec float64   `json:"uptime_sec"`
	Kind      string    `json:"kind"`
	Worker    string    `json:"worker,omitempty"`
	Sweep     string    `json:"sweep,omitempty"`
	Lease     string    `json:"lease,omitempty"`
	Trace     string    `json:"trace,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

// Recorder is the bounded ring. Create with New; the nil Recorder discards.
type Recorder struct {
	start time.Time // monotonic anchor

	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest retained event
	size    int
	seq     uint64
	dropped uint64
}

// New builds a recorder retaining the most recent capacity events
// (<= 0 means 1024). The ring is allocated up front so recording never
// allocates.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{start: time.Now(), buf: make([]Event, capacity)}
}

// Record stamps e (Seq, WallUTC, UptimeSec) and appends it, overwriting the
// oldest event once the ring is full. A nil Recorder records nothing and
// allocates nothing.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	e.WallUTC = now.UTC()
	e.UptimeSec = now.Sub(r.start).Seconds()
	if r.size < len(r.buf) {
		r.buf[(r.head+r.size)%len(r.buf)] = e
		r.size++
	} else {
		r.buf[r.head] = e
		r.head = (r.head + 1) % len(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first. Nil-safe.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.size)
	for i := 0; i < r.size; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Len reports the number of retained events. Nil-safe.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Dropped reports how many events the ring has overwritten. Nil-safe.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// DumpData is the JSON document GET /fleet/events serves: the retained
// events plus enough framing to interpret them.
type DumpData struct {
	StartUTC time.Time `json:"start_utc"`
	Total    uint64    `json:"total"`   // events ever recorded
	Dropped  uint64    `json:"dropped"` // overwritten by ring wrap
	Events   []Event   `json:"events"`
}

// Dump snapshots the recorder. A nil Recorder dumps an empty document.
func (r *Recorder) Dump() DumpData {
	if r == nil {
		return DumpData{Events: []Event{}}
	}
	r.mu.Lock()
	total, dropped := r.seq, r.dropped
	r.mu.Unlock()
	return DumpData{
		StartUTC: r.start.UTC(),
		Total:    total,
		Dropped:  dropped,
		Events:   r.Events(),
	}
}

// WriteJSONL writes the retained events one JSON object per line — the
// -flightrec file dump format, greppable and ingestible line by line.
// Nil-safe (writes nothing).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, e := range r.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Find returns the retained events of one kind, oldest first — the harness
// assertion helper ("did a lease:expire for sweep X happen?"). Nil-safe.
func (r *Recorder) Find(kind string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
