// Package obs is the simulator-wide observability layer: a stdlib-only
// metrics registry (counters, gauges, fixed-bucket histograms, timers), a
// log/slog-based structured progress logger, and pprof profiling helpers.
//
// Instrumented packages accept a Recorder; the Nop recorder keeps the
// analytical hot path allocation-free when observability is off. Hot loops
// should guard label-bearing calls with Enabled():
//
//	if rec.Enabled() {
//		rec.Count("spacx_sim_flow_bytes_total", float64(b),
//			obs.Label{Key: "class", Value: cls})
//	}
//
// A Registry implements Recorder and can export its state as a Prometheus
// text-format page or as JSON (see WritePrometheus / WriteJSON).
package obs

import (
	"io"
	"log/slog"
)

// Label is one metric dimension. Labels are passed by value so that a call
// with no labels performs no allocation.
type Label struct {
	Key   string
	Value string
}

// Recorder is the instrumentation sink threaded through the simulator.
// Implementations must be safe for concurrent use.
type Recorder interface {
	// Enabled reports whether observations are being collected; hot loops
	// use it to skip label construction entirely.
	Enabled() bool
	// Count adds v (which should be non-negative) to a monotonic counter.
	Count(name string, v float64, labels ...Label)
	// Gauge sets a point-in-time value.
	Gauge(name string, v float64, labels ...Label)
	// Observe records one sample into a fixed-bucket histogram.
	Observe(name string, v float64, labels ...Label)
	// Time starts a timer; the returned stop function observes the elapsed
	// seconds into the named histogram.
	Time(name string, labels ...Label) func()
	// Logger returns the structured progress logger (never nil).
	Logger() *slog.Logger
}

// Snapshotter is implemented by recorders that can export their collected
// state; the simulator uses it to attach a snapshot to its results.
type Snapshotter interface {
	Snapshot() Snapshot
}

// nop discards everything.
type nop struct{}

var nopStop = func() {}

func (nop) Enabled() bool                     { return false }
func (nop) Count(string, float64, ...Label)   {}
func (nop) Gauge(string, float64, ...Label)   {}
func (nop) Observe(string, float64, ...Label) {}
func (nop) Time(string, ...Label) func()      { return nopStop }
func (nop) Logger() *slog.Logger              { return discardLogger }

var discardLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
	Level: slog.Level(127), // above every standard level: nothing passes
}))

// Nop returns the shared no-op recorder.
func Nop() Recorder { return nop{} }

// NewLogger returns a progress logger: a debug-level text logger on w when
// verbose, the discarding logger otherwise.
func NewLogger(w io.Writer, verbose bool) *slog.Logger {
	if !verbose {
		return discardLogger
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
}
