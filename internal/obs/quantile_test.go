package obs

import (
	"math"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var h HistogramData
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// Four samples, all in the one (2, 4] bucket: Min=2.5, Max=3.5.
	h := HistogramData{
		Count: 4, Sum: 12, Min: 2.5, Max: 3.5,
		Buckets: []Bucket{{LE: 2, Count: 0}, {LE: 4, Count: 4}},
	}
	// Rank 2 of 4 lies halfway through the bucket's population; the bucket
	// interpolates from the recorded Min 2.5 (sharper than the bound 2) to
	// its upper bound 4: 2.5 + 1.5 * 2/4.
	if got := h.Quantile(0.5); got != 3.25 {
		t.Errorf("p50 = %v, want 3.25", got)
	}
	// A high quantile interpolates to ~3.99 but the recorded Max is 3.5.
	if got := h.Quantile(0.99); got != 3.5 {
		t.Errorf("p99 = %v, want the Max clamp 3.5", got)
	}
	if got := h.Quantile(0); got != 2.5 {
		t.Errorf("q=0 = %v, want Min", got)
	}
	if got := h.Quantile(1); got != 3.5 {
		t.Errorf("q=1 = %v, want Max", got)
	}
}

func TestQuantileFirstBucketUsesMin(t *testing.T) {
	// All mass in the first bucket (le=10): without the Min anchor the
	// estimate would interpolate from 0.
	h := HistogramData{
		Count: 2, Sum: 16, Min: 6, Max: 10,
		Buckets: []Bucket{{LE: 10, Count: 2}},
	}
	if got := h.Quantile(0.5); got != 8 { // halfway between Min=6 and le=10
		t.Errorf("p50 = %v, want 8", got)
	}
}

func TestQuantileOverflowBucketReturnsMax(t *testing.T) {
	// Three of four samples above the last finite bound.
	h := HistogramData{
		Count: 4, Sum: 100, Min: 0.5, Max: 42,
		Buckets: []Bucket{{LE: 1, Count: 1}},
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %v, want Max 42 for the +Inf bucket", q, got)
		}
	}
	// The lowest quartile still interpolates inside the finite bucket.
	if got := h.Quantile(0.25); got != 1 || math.IsNaN(got) {
		t.Errorf("p25 = %v, want 1", got)
	}
}

func TestQuantileThroughRegistry(t *testing.T) {
	r := NewRegistry(nil)
	r.SetBuckets("lat_seconds", []float64{1, 2, 4, 8})
	for i := 1; i <= 100; i++ {
		r.Observe("lat_seconds", float64(i%8)+0.5) // 0.5 .. 7.5 uniform-ish
	}
	h := r.Snapshot().Histograms[0]
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(h.Min <= p50 && p50 <= p95 && p95 <= p99 && p99 <= h.Max) {
		t.Errorf("quantiles not monotone within [Min, Max]: min=%v p50=%v p95=%v p99=%v max=%v",
			h.Min, p50, p95, p99, h.Max)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	// One observation: every quantile is that value, pinned by Min == Max.
	r := NewRegistry(nil)
	r.SetBuckets("lat_seconds", []float64{1, 10})
	r.Observe("lat_seconds", 3.5)
	h := r.Snapshot().Histograms[0]
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 3.5 {
			t.Errorf("single-sample Quantile(%v) = %v, want 3.5", q, got)
		}
	}
}

func TestQuantileAllEqualSamples(t *testing.T) {
	// Many identical observations land in one bucket with Min == Max; the
	// interpolation must collapse to the value, never below Min or above Max.
	r := NewRegistry(nil)
	r.SetBuckets("lat_seconds", []float64{1, 2, 4, 8})
	for i := 0; i < 50; i++ {
		r.Observe("lat_seconds", 3)
	}
	h := r.Snapshot().Histograms[0]
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 3 {
			t.Errorf("all-equal Quantile(%v) = %v, want exactly 3", q, got)
		}
	}
}
