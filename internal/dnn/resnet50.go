package dnn

// ResNet50 returns the 21 unique convolution/FC layers of ResNet-50
// (He et al., CVPR 2016) for a 224x224 input, deduplicated exactly as the
// paper describes (Section VII-D): layers sharing identical parameters are
// merged and carry a repeat count (e.g. res2a_branch1 folds into
// res2[a-c]_branch2c). The layer order matches the L1..L21 labels of
// Figures 13 and 14.
func ResNet50() Model {
	return Model{
		Name: "ResNet-50",
		Layers: []Layer{
			// L1: conv1 7x7/2.
			NewConv("L1_conv1", 224, 224, 7, 7, 3, 64, 2, 3),

			// Stage 2 (56x56), 3 bottleneck blocks.
			// L2: res2a_branch2a (only 2a has a 64-channel input).
			NewSameConv("L2_res2a_branch2a", 56, 1, 64, 64, 1),
			// L3: res2[a-c]_branch2b 3x3.
			NewSameConv("L3_res2_branch2b", 56, 3, 64, 64, 1).Times(3),
			// L4: res2[a-c]_branch2c plus res2a_branch1 (same parameters).
			NewSameConv("L4_res2_branch2c", 56, 1, 64, 256, 1).Times(4),
			// L5: res2[b-c]_branch2a from 256 channels.
			NewSameConv("L5_res2bc_branch2a", 56, 1, 256, 64, 1).Times(2),

			// Stage 3 (28x28), 4 blocks.
			NewSameConv("L6_res3a_branch1", 56, 1, 256, 512, 2),
			NewSameConv("L7_res3a_branch2a", 56, 1, 256, 128, 2),
			NewSameConv("L8_res3bcd_branch2a", 28, 1, 512, 128, 1).Times(3),
			NewSameConv("L9_res3_branch2b", 28, 3, 128, 128, 1).Times(4),
			NewSameConv("L10_res3_branch2c", 28, 1, 128, 512, 1).Times(4),

			// Stage 4 (14x14), 6 blocks.
			NewSameConv("L11_res4a_branch1", 28, 1, 512, 1024, 2),
			NewSameConv("L12_res4a_branch2a", 28, 1, 512, 256, 2),
			NewSameConv("L13_res4bf_branch2a", 14, 1, 1024, 256, 1).Times(5),
			NewSameConv("L14_res4_branch2b", 14, 3, 256, 256, 1).Times(6),
			NewSameConv("L15_res4_branch2c", 14, 1, 256, 1024, 1).Times(6),

			// Stage 5 (7x7), 3 blocks.
			NewSameConv("L16_res5a_branch1", 14, 1, 1024, 2048, 2),
			NewSameConv("L17_res5a_branch2a", 14, 1, 1024, 512, 2),
			NewSameConv("L18_res5bc_branch2a", 7, 1, 2048, 512, 1).Times(2),
			NewSameConv("L19_res5_branch2b", 7, 3, 512, 512, 1).Times(3),
			NewSameConv("L20_res5_branch2c", 7, 1, 512, 2048, 1).Times(3),

			// L21: the classifier.
			NewFC("L21_fc1000", 2048, 1000),
		},
	}
}
