// Package dnn defines the DNN layer parameterization used throughout the
// simulator and provides the four benchmark models of the paper's evaluation
// (Section VII-D): ResNet-50, VGG-16, DenseNet-201, and EfficientNet-B7.
//
// Following the paper, only convolution and fully-connected layers are
// modelled (auxiliary operations such as pooling, activation, and
// normalization execute on the GB die and are excluded from the accounting).
// Redundant layers that share identical parameters are deduplicated and carry
// a Repeat count so whole-inference accumulation still covers every instance.
package dnn

import (
	"errors"
	"fmt"
)

// Kind classifies a layer.
type Kind int

const (
	// Conv is a standard (possibly grouped or depthwise) convolution.
	Conv Kind = iota
	// FC is a fully-connected layer, modelled as a 1x1 convolution over a
	// 1x1 spatial extent (Figure 4 degenerates to a matrix-vector product).
	FC
)

func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case FC:
		return "fc"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Layer holds the nested-loop dimensions of Figure 3/4: weight kernels
// R x S over C input channels producing K output channels, applied to an
// H x W ifmap yielding an E x F ofmap.
type Layer struct {
	Name string
	Kind Kind

	R, S int // kernel height, width
	C, K int // input channels, output channels
	H, W int // ifmap height, width
	E, F int // ofmap height, width (derived by the constructors)

	Stride int
	Pad    int
	Groups int // 1 = dense conv; C = depthwise

	// Repeat is how many identical instances of this layer the full model
	// contains (the paper deduplicates, e.g. res2a_branch1 vs
	// res2[a-c]_branch2c, but accumulates over all instances).
	Repeat int

	// Batch is the number of input samples processed together. The paper
	// assumes batch 1 (Figure 4); a larger batch multiplies the output
	// positions, activations, and MACs while weights stay shared — the
	// extension studied by exp.BatchScaling. Zero means 1.
	Batch int
}

// batch returns the effective batch size (zero value means 1).
func (l Layer) batch() int64 {
	if l.Batch <= 1 {
		return 1
	}
	return int64(l.Batch)
}

// WithBatch returns a copy of the layer at the given batch size.
func (l Layer) WithBatch(b int) Layer {
	l.Batch = b
	return l
}

// outDim computes one output spatial dimension.
func outDim(in, k, stride, pad int) int {
	return (in-k+2*pad)/stride + 1
}

// NewConv builds a convolution layer and derives the ofmap dimensions.
func NewConv(name string, h, w, r, s, c, k, stride, pad int) Layer {
	l := Layer{
		Name: name, Kind: Conv,
		R: r, S: s, C: c, K: k, H: h, W: w,
		Stride: stride, Pad: pad, Groups: 1, Repeat: 1,
	}
	l.E = outDim(h, r, stride, pad)
	l.F = outDim(w, s, stride, pad)
	return l
}

// NewSameConv builds a square "same"-padded convolution: pad = r/2, so the
// output extent is ceil(h/stride).
func NewSameConv(name string, h, r, c, k, stride int) Layer {
	l := NewConv(name, h, h, r, r, c, k, stride, r/2)
	// "Same" padding with even inputs and stride 2 should give ceil(h/s);
	// adjust asymmetric-padding cases (TensorFlow-style) to match.
	want := (h + stride - 1) / stride
	if l.E != want {
		l.E, l.F = want, want
	}
	return l
}

// NewDepthwise builds a depthwise ("groups == channels") convolution.
func NewDepthwise(name string, h, r, c, stride int) Layer {
	l := NewSameConv(name, h, r, c, c, stride)
	l.Groups = c
	return l
}

// NewFC builds a fully-connected layer with in inputs and out outputs.
func NewFC(name string, in, out int) Layer {
	return Layer{
		Name: name, Kind: FC,
		R: 1, S: 1, C: in, K: out, H: 1, W: 1, E: 1, F: 1,
		Stride: 1, Groups: 1, Repeat: 1,
	}
}

// Times returns a copy of the layer with the given repeat count.
func (l Layer) Times(n int) Layer {
	l.Repeat = n
	return l
}

// Validate checks internal consistency of the dimension set.
func (l Layer) Validate() error {
	switch {
	case l.R <= 0 || l.S <= 0 || l.C <= 0 || l.K <= 0 ||
		l.H <= 0 || l.W <= 0 || l.E <= 0 || l.F <= 0:
		return fmt.Errorf("dnn: layer %q has non-positive dimension: %+v", l.Name, l)
	case l.Stride <= 0:
		return fmt.Errorf("dnn: layer %q has non-positive stride", l.Name)
	case l.Groups <= 0 || l.C%l.Groups != 0 || l.K%l.Groups != 0:
		return fmt.Errorf("dnn: layer %q has invalid groups %d for C=%d K=%d",
			l.Name, l.Groups, l.C, l.K)
	case l.Repeat <= 0:
		return errors.New("dnn: layer repeat must be positive")
	case l.Batch < 0:
		return fmt.Errorf("dnn: layer %q has negative batch %d", l.Name, l.Batch)
	case l.R > l.H+2*l.Pad || l.S > l.W+2*l.Pad:
		return fmt.Errorf("dnn: layer %q kernel exceeds padded input", l.Name)
	}
	return nil
}

// MACs returns the multiply-accumulate count of one instance of the layer:
// K * E * F * R * S * C/Groups.
func (l Layer) MACs() int64 {
	return l.batch() * int64(l.K) * int64(l.E) * int64(l.F) *
		int64(l.R) * int64(l.S) * int64(l.C/l.Groups)
}

// WeightCount returns the number of weight values: K * R * S * C/Groups.
func (l Layer) WeightCount() int64 {
	return int64(l.K) * int64(l.R) * int64(l.S) * int64(l.C/l.Groups)
}

// IfmapCount returns the number of input-feature values: H * W * C.
func (l Layer) IfmapCount() int64 {
	return l.batch() * int64(l.H) * int64(l.W) * int64(l.C)
}

// OfmapCount returns the number of output-feature values: K * E * F.
func (l Layer) OfmapCount() int64 {
	return l.batch() * int64(l.K) * int64(l.E) * int64(l.F)
}

// OutputPositions returns Batch*E*F, the per-channel output plane size that
// the SPACX dataflow distributes across chiplets (independent samples extend
// the e/f plane).
func (l Layer) OutputPositions() int64 { return l.batch() * int64(l.E) * int64(l.F) }

// ArithmeticIntensity is MACs per input value moved (weights + ifmaps),
// a rough communication-boundedness indicator used in tests and reports.
func (l Layer) ArithmeticIntensity() float64 {
	return float64(l.MACs()) / float64(l.WeightCount()+l.IfmapCount())
}

func (l Layer) String() string {
	if l.Kind == FC {
		return fmt.Sprintf("%s fc %d->%d x%d", l.Name, l.C, l.K, l.Repeat)
	}
	g := ""
	if l.Groups > 1 {
		g = fmt.Sprintf(" g%d", l.Groups)
	}
	return fmt.Sprintf("%s conv %dx%d %dx%d C%d K%d s%d%s -> %dx%d x%d",
		l.Name, l.H, l.W, l.R, l.S, l.C, l.K, l.Stride, g, l.E, l.F, l.Repeat)
}

// Model is an ordered list of (deduplicated) layers plus bookkeeping.
type Model struct {
	Name   string
	Layers []Layer
}

// Validate validates every layer.
func (m Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("dnn: model %q has no layers", m.Name)
	}
	for _, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("model %q: %w", m.Name, err)
		}
	}
	return nil
}

// TotalMACs sums MACs across all layer instances (repeats included).
func (m Model) TotalMACs() int64 {
	var total int64
	for _, l := range m.Layers {
		total += l.MACs() * int64(l.Repeat)
	}
	return total
}

// TotalWeights sums weight counts across all layer instances.
func (m Model) TotalWeights() int64 {
	var total int64
	for _, l := range m.Layers {
		total += l.WeightCount() * int64(l.Repeat)
	}
	return total
}

// LayerInstances returns the total layer count including repeats.
func (m Model) LayerInstances() int {
	n := 0
	for _, l := range m.Layers {
		n += l.Repeat
	}
	return n
}
