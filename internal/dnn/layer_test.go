package dnn

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOutDim(t *testing.T) {
	cases := []struct {
		in, k, stride, pad, want int
	}{
		{224, 7, 2, 3, 112},
		{56, 3, 1, 1, 56},
		{56, 1, 1, 0, 56},
		{56, 1, 2, 0, 28},
		{4, 2, 1, 0, 3}, // the paper's Figure 8 example: E = H-R+1
	}
	for _, c := range cases {
		if got := outDim(c.in, c.k, c.stride, c.pad); got != c.want {
			t.Errorf("outDim(%d,%d,%d,%d) = %d, want %d",
				c.in, c.k, c.stride, c.pad, got, c.want)
		}
	}
}

func TestNewConvDerivesOfmap(t *testing.T) {
	l := NewConv("x", 224, 224, 7, 7, 3, 64, 2, 3)
	if l.E != 112 || l.F != 112 {
		t.Errorf("conv1 E,F = %d,%d, want 112,112", l.E, l.F)
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewSameConvCeil(t *testing.T) {
	// Odd spatial extent with stride 2 must round up (TF-style same pad).
	l := NewSameConv("x", 75, 3, 8, 8, 2)
	if l.E != 38 {
		t.Errorf("75/2 same conv E = %d, want 38", l.E)
	}
	l = NewSameConv("y", 56, 3, 8, 8, 1)
	if l.E != 56 {
		t.Errorf("same conv stride 1 E = %d, want 56", l.E)
	}
}

func TestNewDepthwise(t *testing.T) {
	l := NewDepthwise("dw", 32, 3, 96, 1)
	if l.Groups != 96 || l.C != 96 || l.K != 96 {
		t.Errorf("depthwise dims wrong: %+v", l)
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
	// Depthwise MACs: K*E*F*R*S*(C/groups) with C/groups = 1.
	want := int64(96) * 32 * 32 * 3 * 3
	if got := l.MACs(); got != want {
		t.Errorf("depthwise MACs = %d, want %d", got, want)
	}
}

func TestNewFC(t *testing.T) {
	l := NewFC("fc", 2048, 1000)
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
	if got := l.MACs(); got != 2048*1000 {
		t.Errorf("FC MACs = %d, want %d", got, 2048*1000)
	}
	if l.OfmapCount() != 1000 {
		t.Errorf("FC ofmap = %d, want 1000", l.OfmapCount())
	}
	if !strings.Contains(l.String(), "fc 2048->1000") {
		t.Errorf("FC String = %q", l.String())
	}
}

func TestLayerCounts(t *testing.T) {
	// The paper's Figure 8 example layer: [r s e f c k] = [2 2 4 4 3 8]
	// over a 5x5 ifmap (H = E+R-1).
	l := NewConv("fig8", 5, 5, 2, 2, 3, 8, 1, 0)
	if l.E != 4 || l.F != 4 {
		t.Fatalf("E,F = %d,%d, want 4,4", l.E, l.F)
	}
	if got := l.WeightCount(); got != 8*2*2*3 {
		t.Errorf("weights = %d, want %d", got, 8*2*2*3)
	}
	if got := l.IfmapCount(); got != 5*5*3 {
		t.Errorf("ifmaps = %d, want %d", got, 5*5*3)
	}
	if got := l.OfmapCount(); got != 8*4*4 {
		t.Errorf("ofmaps = %d, want %d", got, 8*4*4)
	}
	if got := l.MACs(); got != 8*4*4*2*2*3 {
		t.Errorf("MACs = %d, want %d", got, 8*4*4*2*2*3)
	}
	if got := l.OutputPositions(); got != 16 {
		t.Errorf("output positions = %d, want 16", got)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Layer{
		{},
		{Name: "neg", R: 3, S: 3, C: -1, K: 8, H: 8, W: 8, E: 8, F: 8, Stride: 1, Groups: 1, Repeat: 1},
		{Name: "stride0", R: 1, S: 1, C: 1, K: 1, H: 1, W: 1, E: 1, F: 1, Stride: 0, Groups: 1, Repeat: 1},
		{Name: "groups", R: 1, S: 1, C: 3, K: 4, H: 2, W: 2, E: 2, F: 2, Stride: 1, Groups: 2, Repeat: 1},
		{Name: "repeat", R: 1, S: 1, C: 1, K: 1, H: 1, W: 1, E: 1, F: 1, Stride: 1, Groups: 1, Repeat: 0},
		{Name: "kernel", R: 9, S: 9, C: 1, K: 1, H: 2, W: 2, E: 1, F: 1, Stride: 1, Groups: 1, Repeat: 1},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layer %q should fail validation", l.Name)
		}
	}
}

func TestTimes(t *testing.T) {
	l := NewFC("x", 4, 4).Times(3)
	if l.Repeat != 3 {
		t.Errorf("Repeat = %d, want 3", l.Repeat)
	}
}

// Property: MAC count factorizes as ofmap size x per-output work.
func TestMACsFactorization(t *testing.T) {
	f := func(r, c, k, e uint8) bool {
		layer := Layer{
			Name: "q", R: int(r%5) + 1, S: int(r%5) + 1,
			C: int(c%64) + 1, K: int(k%64) + 1,
			E: int(e%32) + 1, F: int(e%32) + 1,
			Stride: 1, Groups: 1, Repeat: 1,
		}
		layer.H = layer.E + layer.R - 1
		layer.W = layer.F + layer.S - 1
		perOutput := int64(layer.R) * int64(layer.S) * int64(layer.C)
		return layer.MACs() == layer.OfmapCount()*perOutput/int64(layer.K)*int64(layer.K)/int64(layer.E*layer.F)*int64(layer.E*layer.F) &&
			layer.MACs() == int64(layer.K)*int64(layer.E)*int64(layer.F)*perOutput
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	// A 3x3 conv reuses data heavily; an FC layer has intensity < 1.5.
	conv := NewSameConv("c", 56, 3, 64, 64, 1)
	fc := NewFC("f", 4096, 4096)
	if conv.ArithmeticIntensity() < 10 {
		t.Errorf("conv intensity = %v, expected high reuse", conv.ArithmeticIntensity())
	}
	if fc.ArithmeticIntensity() > 1.5 {
		t.Errorf("fc intensity = %v, expected ~1", fc.ArithmeticIntensity())
	}
}

func TestWithBatch(t *testing.T) {
	l := NewSameConv("c", 28, 3, 64, 64, 1)
	b := l.WithBatch(8)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.MACs() != 8*l.MACs() {
		t.Errorf("batched MACs = %d, want %d", b.MACs(), 8*l.MACs())
	}
	if b.IfmapCount() != 8*l.IfmapCount() || b.OfmapCount() != 8*l.OfmapCount() {
		t.Error("batched activation counts should scale by 8")
	}
	if b.WeightCount() != l.WeightCount() {
		t.Error("weights are shared across the batch")
	}
	if b.OutputPositions() != 8*l.OutputPositions() {
		t.Error("batched output plane should scale by 8")
	}
	// Zero batch behaves as 1.
	if l.MACs() != l.WithBatch(0).MACs() {
		t.Error("batch 0 should mean batch 1")
	}
	if err := l.WithBatch(-2).Validate(); err == nil {
		t.Error("negative batch should fail validation")
	}
}
