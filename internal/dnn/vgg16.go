package dnn

// VGG16 returns the 12 unique convolution/FC layers of VGG-16
// (Simonyan & Zisserman, 2014) for a 224x224 input, deduplicated per the
// paper: conv3_2==conv3_3, conv4_2==conv4_3, conv5_1==conv5_2==conv5_3.
// The layer order matches the L22..L33 labels of Figures 13 and 14.
func VGG16() Model {
	return Model{
		Name: "VGG-16",
		Layers: []Layer{
			NewSameConv("L22_conv1_1", 224, 3, 3, 64, 1),
			NewSameConv("L23_conv1_2", 224, 3, 64, 64, 1),
			NewSameConv("L24_conv2_1", 112, 3, 64, 128, 1),
			NewSameConv("L25_conv2_2", 112, 3, 128, 128, 1),
			NewSameConv("L26_conv3_1", 56, 3, 128, 256, 1),
			NewSameConv("L27_conv3_23", 56, 3, 256, 256, 1).Times(2),
			NewSameConv("L28_conv4_1", 28, 3, 256, 512, 1),
			NewSameConv("L29_conv4_23", 28, 3, 512, 512, 1).Times(2),
			NewSameConv("L30_conv5_123", 14, 3, 512, 512, 1).Times(3),
			// The three communication-intensive fully connected layers.
			NewFC("L31_fc6", 512*7*7, 4096),
			NewFC("L32_fc7", 4096, 4096),
			NewFC("L33_fc8", 4096, 1000),
		},
	}
}
