package dnn

import (
	"fmt"
	"sort"
)

// Benchmarks returns the four DNN models of the paper's evaluation in the
// order they appear in Figures 15-18.
func Benchmarks() []Model {
	return []Model{ResNet50(), VGG16(), DenseNet201(), EfficientNetB7()}
}

// ByName looks a benchmark model up by its canonical name (case-sensitive,
// e.g. "ResNet-50") or a lowercase alias ("resnet50").
func ByName(name string) (Model, error) {
	aliases := map[string]func() Model{
		"ResNet-50":       ResNet50,
		"resnet50":        ResNet50,
		"VGG-16":          VGG16,
		"vgg16":           VGG16,
		"DenseNet-201":    DenseNet201,
		"densenet201":     DenseNet201,
		"EfficientNet-B7": EfficientNetB7,
		"efficientnetb7":  EfficientNetB7,
		"AlexNet":         AlexNet,
		"alexnet":         AlexNet,
		"MobileNetV2":     MobileNetV2,
		"mobilenetv2":     MobileNetV2,
	}
	if f, ok := aliases[name]; ok {
		return f(), nil
	}
	names := make([]string, 0, len(aliases))
	for k := range aliases {
		names = append(names, k)
	}
	sort.Strings(names)
	return Model{}, fmt.Errorf("dnn: unknown model %q (have %v)", name, names)
}
