package dnn

import (
	"strings"
	"testing"
)

func TestResNet50Shape(t *testing.T) {
	m := ResNet50()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper: "There are 21 ... different convolution or fully connected
	// layers in ResNet-50".
	if len(m.Layers) != 21 {
		t.Fatalf("ResNet-50 unique layers = %d, want 21", len(m.Layers))
	}
	// Instance count: conv1 + stage2(3 blocks x3 + branch1) + stage3(4x3+1)
	// + stage4(6x3+1) + stage5(3x3+1) + fc = 1+10+13+19+10+1 = 54.
	if got := m.LayerInstances(); got != 54 {
		t.Errorf("ResNet-50 layer instances = %d, want 54", got)
	}
	// ~4.1 GMACs for one 224x224 inference (well-known figure ~3.86e9
	// counting only convs+fc with this dedup set).
	macs := m.TotalMACs()
	if macs < 3.5e9 || macs > 4.5e9 {
		t.Errorf("ResNet-50 total MACs = %d, want ~4e9", macs)
	}
	// ~25.5M params total; conv+fc weights alone ~25M.
	w := m.TotalWeights()
	if w < 20e6 || w > 30e6 {
		t.Errorf("ResNet-50 weights = %d, want ~25e6", w)
	}
	// Spot-check L1 and L21.
	if m.Layers[0].E != 112 || m.Layers[0].K != 64 {
		t.Errorf("L1 = %+v", m.Layers[0])
	}
	last := m.Layers[20]
	if last.Kind != FC || last.C != 2048 || last.K != 1000 {
		t.Errorf("L21 = %+v", last)
	}
}

func TestVGG16Shape(t *testing.T) {
	m := VGG16()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 12 {
		t.Fatalf("VGG-16 unique layers = %d, want 12", len(m.Layers))
	}
	// 13 convs + 3 FCs = 16 instances.
	if got := m.LayerInstances(); got != 16 {
		t.Errorf("VGG-16 instances = %d, want 16", got)
	}
	// ~15.5 GMACs, ~138M params — the classic numbers.
	macs := m.TotalMACs()
	if macs < 14e9 || macs > 17e9 {
		t.Errorf("VGG-16 MACs = %d, want ~15.5e9", macs)
	}
	w := m.TotalWeights()
	if w < 130e6 || w > 145e6 {
		t.Errorf("VGG-16 weights = %d, want ~138e6", w)
	}
	// FC6 dominates weights.
	var fc6 Layer
	for _, l := range m.Layers {
		if strings.Contains(l.Name, "fc6") {
			fc6 = l
		}
	}
	if fc6.WeightCount() != int64(25088)*4096 {
		t.Errorf("fc6 weights = %d, want %d", fc6.WeightCount(), int64(25088)*4096)
	}
}

func TestDenseNet201Shape(t *testing.T) {
	m := DenseNet201()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// stem + 2*(6+12+48+32) dense-layer convs + 3 transitions + fc = 201.
	if got := len(m.Layers); got != 201 {
		t.Errorf("DenseNet-201 layers = %d, want 201", got)
	}
	// Final FC input must be 896 + 32*32 = 1920 channels.
	last := m.Layers[len(m.Layers)-1]
	if last.Kind != FC || last.C != 1920 {
		t.Errorf("final fc = %+v, want C=1920", last)
	}
	// ~4.3 GMACs.
	macs := m.TotalMACs()
	if macs < 3.5e9 || macs > 5.5e9 {
		t.Errorf("DenseNet-201 MACs = %d, want ~4.3e9", macs)
	}
	// ~20M params.
	w := m.TotalWeights()
	if w < 15e6 || w > 25e6 {
		t.Errorf("DenseNet-201 weights = %d, want ~20e6", w)
	}
}

func TestEfficientNetB7Shape(t *testing.T) {
	m := EfficientNetB7()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Width scaling: stem 32->64, head 1280->2560, final FC C=2560.
	if m.Layers[0].K != 64 {
		t.Errorf("stem channels = %d, want 64", m.Layers[0].K)
	}
	last := m.Layers[len(m.Layers)-1]
	if last.Kind != FC || last.C != 2560 {
		t.Errorf("final fc = %+v, want C=2560", last)
	}
	// Depth scaling: 4+7+7+10+10+13+4 = 55 MBConv blocks; stage 1 blocks
	// have no expansion conv, so convs = 1 (stem) + 55*3 - 4 + 1 (head).
	wantConvs := 1 + 55*3 - 4 + 1
	if got := len(m.Layers) - 1; got != wantConvs {
		t.Errorf("EfficientNet-B7 conv layers = %d, want %d", got, wantConvs)
	}
	// ~37-38 GMACs at 600x600 (paper-reported 37B); allow a band since we
	// exclude squeeze-excite.
	macs := m.TotalMACs()
	if macs < 30e9 || macs > 45e9 {
		t.Errorf("EfficientNet-B7 MACs = %d, want ~37e9", macs)
	}
	// Depthwise layers must be present and grouped.
	dw := 0
	for _, l := range m.Layers {
		if l.Groups > 1 {
			dw++
			if l.Groups != l.C {
				t.Errorf("depthwise %s has groups %d != C %d", l.Name, l.Groups, l.C)
			}
		}
	}
	if dw != 55 {
		t.Errorf("depthwise layers = %d, want 55", dw)
	}
}

func TestRoundFilters(t *testing.T) {
	cases := []struct{ in, want int }{
		{32, 64}, {16, 32}, {24, 48}, {40, 80},
		{80, 160}, {112, 224}, {192, 384}, {320, 640}, {1280, 2560},
	}
	for _, c := range cases {
		if got := roundFilters(c.in, 2.0, 8); got != c.want {
			t.Errorf("roundFilters(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRoundRepeats(t *testing.T) {
	cases := []struct{ in, want int }{{1, 4}, {2, 7}, {3, 10}, {4, 13}}
	for _, c := range cases {
		if got := roundRepeats(c.in, 3.1); got != c.want {
			t.Errorf("roundRepeats(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBenchmarks(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 4 {
		t.Fatalf("benchmarks = %d, want 4", len(bs))
	}
	wantOrder := []string{"ResNet-50", "VGG-16", "DenseNet-201", "EfficientNet-B7"}
	for i, m := range bs {
		if m.Name != wantOrder[i] {
			t.Errorf("benchmark %d = %q, want %q", i, m.Name, wantOrder[i])
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ResNet-50", "resnet50", "VGG-16", "vgg16",
		"DenseNet-201", "densenet201", "EfficientNet-B7", "efficientnetb7"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("lenet"); err == nil {
		t.Error("ByName(lenet) should fail")
	} else if !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unexpected error: %v", err)
	}
	if m, err := ByName("alexnet"); err != nil || m.Name != "AlexNet" {
		t.Errorf("ByName(alexnet): %v %v", m.Name, err)
	}
	if m, err := ByName("mobilenetv2"); err != nil || m.Name != "MobileNetV2" {
		t.Errorf("ByName(mobilenetv2): %v %v", m.Name, err)
	}
}

func TestModelValidateEmpty(t *testing.T) {
	if err := (Model{Name: "empty"}).Validate(); err == nil {
		t.Error("empty model should fail validation")
	}
}

func TestAlexNetShape(t *testing.T) {
	m := AlexNet()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 8 {
		t.Fatalf("layers = %d, want 8", len(m.Layers))
	}
	// conv1: 227x227/4 with 11x11 kernel -> 55x55.
	if m.Layers[0].E != 55 {
		t.Errorf("conv1 E = %d, want 55", m.Layers[0].E)
	}
	// ~0.7 GMACs, ~61M params.
	if macs := m.TotalMACs(); macs < 0.6e9 || macs > 0.85e9 {
		t.Errorf("AlexNet MACs = %d, want ~0.7e9", macs)
	}
	if w := m.TotalWeights(); w < 55e6 || w > 65e6 {
		t.Errorf("AlexNet weights = %d, want ~61e6", w)
	}
}

func TestMobileNetV2Shape(t *testing.T) {
	m := MobileNetV2()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 17 bottlenecks: first has no expansion conv -> 17*3-1 = 50 block
	// convs + stem + head + fc = 53 layers.
	if len(m.Layers) != 53 {
		t.Fatalf("layers = %d, want 53", len(m.Layers))
	}
	// ~0.3 GMACs, ~3.5M params (conv+fc).
	if macs := m.TotalMACs(); macs < 0.25e9 || macs > 0.4e9 {
		t.Errorf("MobileNetV2 MACs = %d, want ~0.3e9", macs)
	}
	if w := m.TotalWeights(); w < 2.5e6 || w > 4.5e6 {
		t.Errorf("MobileNetV2 weights = %d, want ~3.5e6", w)
	}
	// Depthwise layers present.
	dw := 0
	for _, l := range m.Layers {
		if l.Groups > 1 {
			dw++
		}
	}
	if dw != 17 {
		t.Errorf("depthwise layers = %d, want 17", dw)
	}
	// Final spatial extent 7x7 before the head.
	last := m.Layers[len(m.Layers)-2]
	if last.E != 7 {
		t.Errorf("head spatial extent = %d, want 7", last.E)
	}
}
