package dnn

import "fmt"

// DenseNet201 returns the convolution/FC layers of DenseNet-201
// (Huang et al., CVPR 2017) for a 224x224 input, generated programmatically:
// an initial 7x7 stem, four dense blocks of (6, 12, 48, 32) layers with
// growth rate 32 (each dense layer = 1x1 bottleneck to 4*growth channels
// followed by a 3x3 conv to growth channels), three 1x1 transition layers
// that halve the channel count, and the final classifier.
//
// The paper does not plot DenseNet-201 per-layer "due to the large layer
// counts"; it is used for the whole-inference figures only, so no manual
// deduplication labels are needed — layers inside a block that share
// parameters are still distinct here (input channel count grows each layer,
// so almost none coincide anyway).
func DenseNet201() Model {
	const growth = 32
	blocks := []int{6, 12, 48, 32}
	spatial := []int{56, 28, 14, 7}

	m := Model{Name: "DenseNet-201"}
	m.Layers = append(m.Layers, NewConv("stem_conv7", 224, 224, 7, 7, 3, 64, 2, 3))

	channels := 64
	for b, n := range blocks {
		h := spatial[b]
		for i := 0; i < n; i++ {
			m.Layers = append(m.Layers,
				NewSameConv(fmt.Sprintf("db%d_l%d_1x1", b+1, i+1), h, 1, channels, 4*growth, 1),
				NewSameConv(fmt.Sprintf("db%d_l%d_3x3", b+1, i+1), h, 3, 4*growth, growth, 1),
			)
			channels += growth
		}
		if b < len(blocks)-1 {
			// Transition: 1x1 conv halving channels (pooling is a GB-side
			// auxiliary op and not modelled).
			m.Layers = append(m.Layers,
				NewSameConv(fmt.Sprintf("trans%d_1x1", b+1), h, 1, channels, channels/2, 1))
			channels /= 2
		}
	}
	m.Layers = append(m.Layers, NewFC("fc1000", channels, 1000))
	return m
}
