package dnn

import "fmt"

// Models beyond the paper's benchmark set, provided for library users:
// AlexNet (the classic five-conv sanity model) and MobileNetV2 (a
// depthwise-separable workload that stresses the grouped-convolution paths
// far harder than EfficientNet's scaled blocks).

// AlexNet returns the five convolution and three FC layers of AlexNet
// (Krizhevsky et al., 2012) for a 227x227 input.
func AlexNet() Model {
	grouped := func(l Layer, g int) Layer {
		l.Groups = g
		return l
	}
	return Model{
		Name: "AlexNet",
		Layers: []Layer{
			NewConv("conv1", 227, 227, 11, 11, 3, 96, 4, 0),
			// conv2/4/5 are split across the two GPUs of the original
			// (groups = 2).
			grouped(NewConv("conv2", 27, 27, 5, 5, 96, 256, 1, 2), 2),
			NewConv("conv3", 13, 13, 3, 3, 256, 384, 1, 1),
			grouped(NewConv("conv4", 13, 13, 3, 3, 384, 384, 1, 1), 2),
			grouped(NewConv("conv5", 13, 13, 3, 3, 384, 256, 1, 1), 2),
			NewFC("fc6", 256*6*6, 4096),
			NewFC("fc7", 4096, 4096),
			NewFC("fc8", 4096, 1000),
		},
	}
}

// mb2Stage describes one MobileNetV2 bottleneck stage.
type mb2Stage struct {
	expand  int
	outCh   int
	repeats int
	stride  int
}

// MobileNetV2 returns the convolution/FC layers of MobileNetV2
// (Sandler et al., CVPR 2018) for a 224x224 input: a stem conv, 17 inverted
// residual bottlenecks (expansion 1x1, depthwise 3x3, projection 1x1), the
// head conv, and the classifier.
func MobileNetV2() Model {
	stages := []mb2Stage{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	m := Model{Name: "MobileNetV2"}
	h := 224
	m.Layers = append(m.Layers, NewSameConv("stem_conv3", h, 3, 3, 32, 2))
	h = ceilDiv(h, 2)

	in := 32
	for si, st := range stages {
		for r := 0; r < st.repeats; r++ {
			stride := 1
			if r == 0 {
				stride = st.stride
			}
			name := fmt.Sprintf("b%d_%d", si+1, r+1)
			mid := in * st.expand
			if st.expand != 1 {
				m.Layers = append(m.Layers, NewSameConv(name+"_expand", h, 1, in, mid, 1))
			}
			m.Layers = append(m.Layers, NewDepthwise(name+"_dw", h, 3, mid, stride))
			h = ceilDiv(h, stride)
			m.Layers = append(m.Layers, NewSameConv(name+"_project", h, 1, mid, st.outCh, 1))
			in = st.outCh
		}
	}
	m.Layers = append(m.Layers, NewSameConv("head_conv1", h, 1, in, 1280, 1))
	m.Layers = append(m.Layers, NewFC("fc1000", 1280, 1000))
	return m
}
