// Package dataflow implements the three dataflows of the evaluation
// (Section IV and Figure 17): the broadcast-enabled output-stationary SPACX
// dataflow, the weight-stationary WS dataflow of Simba [13], and the
// output-stationary OS(e/f) dataflow of ShiDianNao [36]. A dataflow maps a
// DNN layer onto an accelerator and yields a Profile: the spatial
// utilization, the serial compute work per PE, the network flows (with their
// broadcast structure), the memory-hierarchy access counts, and the optical
// reconfiguration epochs.
package dataflow

import (
	"fmt"

	"spacx/internal/dnn"
	"spacx/internal/network"
)

// Data sizes (Section VII-C): 8-bit weights and input features, 24-bit
// partial sums.
const (
	WeightBytes = 1
	IfmapBytes  = 1
	OutputBytes = 1 // final output features, post-accumulation
	PsumBytes   = 3
)

// Arch describes the accelerator a dataflow maps onto.
type Arch struct {
	Name string

	M int // chiplets
	N int // PEs per chiplet

	VectorWidth int     // MACs per PE per cycle (along the c dimension)
	ClockHz     float64 // PE clock

	PEBufBytes int // per-PE buffer (4 kB SPACX, 43 kB Simba/POPSTAR)
	GBBytes    int // global buffer (2 MB)

	// Broadcast granularities for the SPACX dataflow (ignored by WS and
	// OS(e/f)): GEF chiplets per cross-chiplet broadcast group, GK PEs per
	// single-chiplet broadcast group.
	GEF, GK int

	Net network.Model
}

// Validate checks the architecture parameters.
func (a Arch) Validate() error {
	switch {
	case a.M <= 0 || a.N <= 0:
		return fmt.Errorf("dataflow: arch %q M=%d N=%d must be positive", a.Name, a.M, a.N)
	case a.VectorWidth <= 0:
		return fmt.Errorf("dataflow: arch %q vector width must be positive", a.Name)
	case a.ClockHz <= 0:
		return fmt.Errorf("dataflow: arch %q clock must be positive", a.Name)
	case a.PEBufBytes <= 0 || a.GBBytes <= 0:
		return fmt.Errorf("dataflow: arch %q buffer sizes must be positive", a.Name)
	case a.Net == nil:
		return fmt.Errorf("dataflow: arch %q has no network model", a.Name)
	}
	if a.GEF != 0 && (a.GEF < 0 || a.M%a.GEF != 0) {
		return fmt.Errorf("dataflow: arch %q GEF=%d must divide M=%d", a.Name, a.GEF, a.M)
	}
	if a.GK != 0 && (a.GK < 0 || a.N%a.GK != 0) {
		return fmt.Errorf("dataflow: arch %q GK=%d must divide N=%d", a.Name, a.GK, a.N)
	}
	return nil
}

// TotalPEs returns M*N.
func (a Arch) TotalPEs() int { return a.M * a.N }

// Profile is the result of mapping one layer onto one architecture.
type Profile struct {
	Layer dnn.Layer
	Arch  string

	// Spatial utilization.
	ActiveChiplets int
	ActivePEs      int

	// VectorSteps is the serial vector-MAC issue count of the critical-path
	// PE; compute time = VectorSteps / clock.
	VectorSteps int64

	// Flows between the GB and the PEs (and PE-to-PE psum reduction for
	// WS). DRAM traffic is added by the simulator per its residency mode.
	Flows []network.Flow

	// Memory-hierarchy access counts in bytes.
	PEBufReadBytes  int64
	PEBufWriteBytes int64
	GBReadBytes     int64
	GBWriteBytes    int64

	// RetuneEpochs counts optical-splitter reconfigurations (500 ps each,
	// SPACX only).
	RetuneEpochs int64
}

// MACs returns the layer's total MAC count (single instance).
func (p Profile) MACs() int64 { return p.Layer.MACs() }

// Utilization is achieved MACs per peak MAC-slot over the compute time.
func (p Profile) Utilization(a Arch) float64 {
	peak := float64(a.TotalPEs()) * float64(a.VectorWidth) * float64(p.VectorSteps)
	if peak == 0 {
		return 0
	}
	return float64(p.MACs()) / peak
}

// Dataflow maps layers onto architectures.
type Dataflow interface {
	Name() string
	Map(l dnn.Layer, a Arch) (Profile, error)
}

// ceilDiv is integer ceiling division.
func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// channelVectorOps is the serial vector-op count to cover C input channels
// with the architecture's vector width.
func channelVectorOps(c, vectorWidth int) int64 {
	return ceilDiv(int64(c), int64(vectorWidth))
}

// bufShare splits the PE buffer between weights, ifmaps, and psums; the
// paper's PEs have "separate buffers for input features, weights, and psums"
// (Figure 7) — modelled as fixed fractions of the stated capacity. The
// SPACX mapper plans residency adaptively instead (the execution controller
// configures the split offline per layer); the WS and OS(e/f) baselines use
// this fixed split.
type bufShare struct {
	weight, ifmap, psum int
}

func splitBuffer(total int) bufShare {
	return bufShare{
		weight: total * 2 / 5,
		ifmap:  total * 2 / 5,
		psum:   total / 5,
	}
}

// Residency floors used by the adaptive SPACX planner: the minimum psum
// scratch and the minimum streaming FIFO for a non-resident operand.
const (
	psumMin = 256
	fifoMin = 256
)
