package dataflow

import (
	"fmt"
	"strings"
)

// Explain renders a mapping profile as human-readable text: the spatial
// utilization, the serial loop structure, every network flow with its
// broadcast structure, and the memory-hierarchy traffic — the "why is this
// layer slow" view.
func Explain(p Profile, a Arch) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s\n", p.Layer.Name, p.Arch)
	fmt.Fprintf(&b, "  layer: %s\n", p.Layer.String())
	fmt.Fprintf(&b, "  spatial: %d/%d chiplets, %d/%d PEs (%.1f%% occupancy)\n",
		p.ActiveChiplets, a.M, p.ActivePEs, a.TotalPEs(),
		100*float64(p.ActivePEs)/float64(a.TotalPEs()))
	fmt.Fprintf(&b, "  temporal: %d vector-MAC steps/PE (%.1f%% MAC utilization)\n",
		p.VectorSteps, 100*p.Utilization(a))
	if p.RetuneEpochs > 0 {
		fmt.Fprintf(&b, "  optical retunes: %d epochs (%.1f ns total)\n",
			p.RetuneEpochs, float64(p.RetuneEpochs)*0.5)
	}
	fmt.Fprintf(&b, "  flows:\n")
	for _, f := range p.Flows {
		ff := f.Normalize()
		kind := "unicast"
		switch {
		case ff.DestPerDatum > 1 && ff.ChipletSpan > 1:
			kind = fmt.Sprintf("broadcast x%d (across %d chiplets)", ff.DestPerDatum, ff.ChipletSpan)
		case ff.DestPerDatum > 1:
			kind = fmt.Sprintf("broadcast x%d", ff.DestPerDatum)
		}
		copies := ""
		if ff.TxCopies > 1 {
			copies = fmt.Sprintf(", %d waveguide copies", ff.TxCopies)
		}
		fmt.Fprintf(&b, "    %-8s %-7s %10s over %3d streams, %s%s\n",
			ff.Class, ff.Dir, byteCount(ff.UniqueBytes), ff.Streams, kind, copies)
	}
	fmt.Fprintf(&b, "  memory: PE buf R %s / W %s, GB R %s / W %s\n",
		byteCount(p.PEBufReadBytes), byteCount(p.PEBufWriteBytes),
		byteCount(p.GBReadBytes), byteCount(p.GBWriteBytes))
	return b.String()
}

// byteCount formats a byte total compactly.
func byteCount(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
