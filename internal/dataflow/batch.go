package dataflow

import "spacx/internal/network"

// FlowCost is the folded network cost of a mapped profile's flows: the
// overlappable input and output pool times, the dynamic link energy, and the
// per-flow isolated transfer times. It is everything about a profile's flow
// geometry that does not depend on the residency mode or the global-buffer
// capacity — which is what lets the batched kernel compute it once per
// mapping cohort and reuse it across every point of the cohort.
type FlowCost struct {
	InputSec  float64
	OutputSec float64
	Dynamic   network.EnergyParts

	// Times[i] is flows[i]'s isolated transfer time. Like the flow slice
	// itself it is carved from a pooled slab and permanently owned by the
	// caller (memoized sim.LayerResults retain it as FlowSecs).
	Times []float64
}

// MeasureFlows folds flows into the simulator's overlappable pools under
// net. On a broadcast-capable photonic network the input classes ride
// orthogonal wavelength groups (max); on a shared-medium network they
// serialize (sum). Output flows (PE->GB drains and PE->PE psum relays)
// always serialize. It is the single source of truth for this arithmetic:
// the scalar layer kernel and the batch kernel's cohort prelude both call
// it, so the two paths cannot drift apart.
func MeasureFlows(net network.Model, flows []network.Flow) FlowCost {
	c := FlowCost{Times: newFloats(len(flows))}
	caps := net.Caps()
	orthogonal := caps.CrossChipletBroadcast || caps.SingleChipletBroadcast
	for i, f := range flows {
		t := net.TransferTime(f)
		c.Times[i] = t
		switch f.Dir {
		case network.GBToPE:
			if orthogonal {
				if t > c.InputSec {
					c.InputSec = t
				}
			} else {
				c.InputSec += t
			}
		case network.PEToGB, network.PEToPE:
			c.OutputSec += t
		}
		c.Dynamic = c.Dynamic.Add(net.DynamicEnergy(f))
	}
	return c
}
