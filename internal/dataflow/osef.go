package dataflow

import (
	"math"

	"spacx/internal/dnn"
	"spacx/internal/network"
)

// OSEF is the output-stationary OS(e/f) dataflow of ShiDianNao [36] as
// characterized in Section VIII-C: output positions are mapped across all
// PEs in the system (chiplet- and PE-level), and output channels iterate
// temporally. Weights enjoy full broadcast (every PE needs the same kernel),
// but input features do not — each PE works on a different position, so
// ifmap delivery degenerates to overlapping-window transfers repeated for
// every output channel. On SPACX this leaves the cross-chiplet/single-chiplet
// orthogonality half-used.
type OSEF struct{}

// Name implements Dataflow.
func (OSEF) Name() string { return "OS(e/f)" }

// Map implements Dataflow.
func (OSEF) Map(l dnn.Layer, a Arch) (Profile, error) {
	if err := l.Validate(); err != nil {
		return Profile{}, err
	}
	if err := a.Validate(); err != nil {
		return Profile{}, err
	}
	gk := a.GK
	if gk == 0 {
		gk = a.N
	}
	singleGroups := a.N / gk
	cPerGroup := l.C / l.Groups

	ef := int(l.OutputPositions())
	posSlots := a.TotalPEs()
	usedPos := minInt(ef, posSlots)
	efIters := ceilDiv(int64(ef), int64(posSlots))
	// When the output plane is smaller than the PE array, idle PEs take
	// extra output channels (layers with small e/f, notably FC).
	kPar := minInt(l.K, a.TotalPEs()/maxIntv(1, usedPos))
	if kPar < 1 {
		kPar = 1
	}
	kIters := ceilDiv(int64(l.K), int64(kPar))
	activeChiplets := minInt(a.M, int(ceilDiv(int64(usedPos*kPar), int64(a.N))))

	// Temporal: the k loop per position, spread over kPar PE groups.
	perOutput := int64(l.R) * int64(l.S) * channelVectorOps(cPerGroup, a.VectorWidth)
	steps := efIters * kIters * perOutput

	buf := splitBuffer(a.PEBufBytes)

	// --- Weights: one kernel at a time, broadcast to every active PE.
	weightsPerK := int64(cPerGroup) * int64(l.R) * int64(l.S) * WeightBytes
	wFetch := efIters // re-streamed per position tile (K kernels rarely fit)
	if int64(l.K)*weightsPerK <= int64(buf.weight) {
		wFetch = 1
	}
	// Parallel streams: distinct kernels in flight, one per k-parallel PE
	// group (bounded by the wavelength group), plus prefetch pipelining when
	// the weight buffer can double-buffer kernels.
	prefetch := 1
	if weightsPerK > 0 && int64(buf.weight) > weightsPerK {
		prefetch = int(int64(buf.weight) / weightsPerK)
	}
	wStreams := minInt(maxIntv(kPar, prefetch), gk)
	weightFlow := network.Flow{
		Class:        network.Weights,
		Dir:          network.GBToPE,
		UniqueBytes:  int64(l.K) * weightsPerK * wFetch,
		Streams:      wStreams,
		DestPerDatum: maxIntv(1, usedPos/l.Groups),
		TxCopies:     maxIntv(1, activeChiplets*singleGroups/maxIntv(1, wStreams)),
		ChipletSpan:  activeChiplets,
		PESpan:       a.N,
	}

	// --- Ifmaps: per-chiplet union of the PEs' overlapping windows. The
	// dataflow tiles the c dimension so the window chunk fits the ifmap
	// buffer while the per-position psums stay resident across chunks
	// (output stationary); the union is re-delivered once per psum spill
	// tile of the k loop, not once per output channel.
	tileE := minInt(l.E, int(math.Sqrt(float64(a.N)))+1)
	tileF := int(ceilDiv(int64(minInt(usedPos, a.N)), int64(tileE)))
	unionPerChiplet := int64((tileE-1)*l.Stride+l.R) * int64((tileF-1)*l.Stride+l.S) *
		int64(cPerGroup) * IfmapBytes
	iFetch := ceilDiv(kIters*PsumBytes, int64(buf.psum))
	if iFetch < 1 {
		iFetch = 1
	}
	overlap := maxIntv(1, minInt(a.N, (l.R/l.Stride)*(l.S/l.Stride)))
	ifmapFlow := network.Flow{
		Class:        network.Ifmaps,
		Dir:          network.GBToPE,
		UniqueBytes:  int64(activeChiplets) * unionPerChiplet * efIters * iFetch,
		Streams:      maxIntv(1, activeChiplets*singleGroups),
		DestPerDatum: maxIntv(1, overlap*kPar/l.Groups),
		TxCopies:     1,
		ChipletSpan:  1,
		PESpan:       a.N,
	}

	outputFlow := network.Flow{
		Class:        network.Outputs,
		Dir:          network.PEToGB,
		UniqueBytes:  l.OfmapCount() * OutputBytes,
		Streams:      maxIntv(1, activeChiplets*singleGroups),
		DestPerDatum: 1,
		TxCopies:     1,
		ChipletSpan:  activeChiplets,
		PESpan:       a.N,
	}

	p := Profile{
		Layer:          l,
		Arch:           a.Name,
		ActiveChiplets: activeChiplets,
		ActivePEs:      minInt(usedPos*kPar, a.TotalPEs()),
		VectorSteps:    steps,
		Flows:          newFlows(weightFlow, ifmapFlow, outputFlow),
		RetuneEpochs:   efIters + kIters,
	}
	fillAccessCounts(&p, a)
	return p, nil
}

var _ Dataflow = OSEF{}
