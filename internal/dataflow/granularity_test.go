package dataflow

import (
	"testing"

	"spacx/internal/dnn"
	"spacx/internal/network/spacxnet"
)

// The first worked example of Section V: [r s e f c k] = [2 2 2 2 3 16] on
// the 8x8 machine. Under configuration A only 4 chiplets are utilized
// (e*f = 4 < M = 8) while the k loop iterates (k = 16 > N = 8); splitting
// the chiplets into two cross-chiplet broadcast groups (configuration B)
// fills the machine.
func TestSectionVExampleB(t *testing.T) {
	l := dnn.NewConv("exB", 3, 3, 2, 2, 3, 16, 1, 0) // e=f=2
	if l.E != 2 || l.F != 2 {
		t.Fatalf("layer dims wrong: %+v", l)
	}
	a, err := SpatialUtilization(l, 8, 8, 8, 8) // configuration A
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpatialUtilization(l, 8, 8, 4, 8) // configuration B
	if err != nil {
		t.Fatal(err)
	}
	if a.SpatialUtilization != 0.5 {
		t.Errorf("config A utilization = %v, want 0.5 (4 of 8 chiplets)", a.SpatialUtilization)
	}
	if b.SpatialUtilization != 1.0 {
		t.Errorf("config B utilization = %v, want 1.0", b.SpatialUtilization)
	}
}

// The second worked example: [2 2 4 4 3 4] — only 4 PEs per chiplet are
// utilized under configuration A (k = 4 < N = 8) while e/f iterates
// (e*f = 16 > M = 8); two single-chiplet groups (configuration C) fill it.
func TestSectionVExampleC(t *testing.T) {
	l := dnn.NewConv("exC", 5, 5, 2, 2, 3, 4, 1, 0) // e=f=4
	if l.E != 4 || l.F != 4 {
		t.Fatalf("layer dims wrong: %+v", l)
	}
	a, err := SpatialUtilization(l, 8, 8, 8, 8) // configuration A
	if err != nil {
		t.Fatal(err)
	}
	c, err := SpatialUtilization(l, 8, 8, 8, 4) // configuration C
	if err != nil {
		t.Fatal(err)
	}
	if a.SpatialUtilization != 0.5 {
		t.Errorf("config A utilization = %v, want 0.5 (4 of 8 PEs per chiplet)", a.SpatialUtilization)
	}
	if c.SpatialUtilization != 1.0 {
		t.Errorf("config C utilization = %v, want 1.0", c.SpatialUtilization)
	}
}

func TestExploreGranularityPicksBest(t *testing.T) {
	l := dnn.NewConv("exB", 3, 3, 2, 2, 3, 16, 1, 0)
	pts, best, err := ExploreGranularity(l, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	if pts[best].SpatialUtilization != 1.0 {
		t.Errorf("best utilization = %v, want 1.0", pts[best].SpatialUtilization)
	}
	// The best configuration must not be A for this layer.
	if pts[best].GEF == 8 && pts[best].GK == 8 {
		t.Error("configuration A should not win the first Section V example")
	}
}

func TestExploreGranularityRejectsInvalidLayer(t *testing.T) {
	if _, _, err := ExploreGranularity(dnn.Layer{}, 8, 8); err == nil {
		t.Error("invalid layer should fail")
	}
}

func TestExploreGranularityLargeLayerSaturates(t *testing.T) {
	// A big conv saturates the machine at any granularity; explore should
	// report full utilization everywhere.
	l := dnn.NewSameConv("big", 56, 3, 64, 64, 1)
	pts, best, err := ExploreGranularity(l, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pts[best].SpatialUtilization != 1.0 {
		t.Errorf("big layer best utilization = %v, want 1.0", pts[best].SpatialUtilization)
	}
}

func TestIfmapReuseChiplets(t *testing.T) {
	// Figure 12's example: a 2x2 kernel with E2=F2=2 spatial cross factors
	// and a single cross group shares each input feature among 4 chiplets.
	l := dnn.NewConv("f12", 5, 5, 2, 2, 3, 8, 1, 0)
	if got := IfmapReuseChiplets(l, 2, 2, 1); got != 4 {
		t.Errorf("reuse = %d, want 4 (min(S,F2)*min(R,E2)*K1 = 2*2*1)", got)
	}
	// A 1x1 kernel has no convolution reuse across spatial factors.
	one := dnn.NewConv("p", 4, 4, 1, 1, 3, 8, 1, 0)
	if got := IfmapReuseChiplets(one, 4, 4, 1); got != 1 {
		t.Errorf("1x1 reuse = %d, want 1", got)
	}
	// K1 cross groups multiply the set.
	if got := IfmapReuseChiplets(l, 2, 2, 3); got != 12 {
		t.Errorf("reuse with K1=3 = %d, want 12", got)
	}
	// Degenerate factors clamp.
	if got := IfmapReuseChiplets(l, 0, 0, 0); got != 1 {
		t.Errorf("clamped reuse = %d, want 1", got)
	}
}

func TestWeightReusePEs(t *testing.T) {
	if WeightReusePEs(2, 3) != 6 {
		t.Error("E3*F3 = 6 expected")
	}
	if WeightReusePEs(0, 0) != 1 {
		t.Error("clamped weight reuse should be 1")
	}
}

func TestAnalyzeReuse(t *testing.T) {
	a := Arch{
		Name: "SPACX", M: 32, N: 32, VectorWidth: 32, ClockHz: 1e9,
		PEBufBytes: 4 * 1024, GBBytes: 2 << 20, GEF: 8, GK: 16,
		Net: mustNet(t),
	}
	l := dnn.NewSameConv("c3", 56, 3, 64, 64, 1)
	p, err := SPACX{}.Map(l, a)
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeReuse(p)
	// Weight broadcast width = posSlots = 16; ifmap sharing = usedK = 64.
	if rep.Weights.SpatialReuse != 16 {
		t.Errorf("weight spatial reuse = %d, want 16", rep.Weights.SpatialReuse)
	}
	if rep.Ifmaps.SpatialReuse != 64 {
		t.Errorf("ifmap spatial reuse = %d, want 64", rep.Ifmaps.SpatialReuse)
	}
	// Every value fetched at least once.
	if rep.Weights.FetchAmplification < 1 || rep.Ifmaps.FetchAmplification < 0.2 {
		t.Errorf("implausible fetch amplification: %+v", rep)
	}
	if rep.Weights.TemporalReuse <= 0 || rep.Weights.TotalReuse() <= 0 {
		t.Errorf("reuse must be positive: %+v", rep.Weights)
	}
	// The SPACX dataflow's whole argument: both operands enjoy multi-way
	// spatial reuse simultaneously.
	if rep.Weights.SpatialReuse < 2 || rep.Ifmaps.SpatialReuse < 2 {
		t.Error("orthogonal broadcast should give both operands spatial reuse")
	}
}

// WS on the same architecture trades one operand's spatial reuse away — the
// Section II-B2 argument quantified.
func TestReuseWSVsSPACX(t *testing.T) {
	a := Arch{
		Name: "SPACX", M: 32, N: 32, VectorWidth: 32, ClockHz: 1e9,
		PEBufBytes: 4 * 1024, GBBytes: 2 << 20, GEF: 8, GK: 16,
		Net: mustNet(t),
	}
	l := dnn.NewSameConv("c3", 56, 3, 64, 64, 1)
	sp, err := SPACX{}.Map(l, a)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := WS{}.Map(l, a)
	if err != nil {
		t.Fatal(err)
	}
	rs, rw := AnalyzeReuse(sp), AnalyzeReuse(ws)
	// SPACX gives weights strictly more spatial reuse than WS does.
	if rs.Weights.SpatialReuse <= rw.Weights.SpatialReuse {
		t.Errorf("SPACX weight spatial reuse %d should exceed WS %d",
			rs.Weights.SpatialReuse, rw.Weights.SpatialReuse)
	}
}

func mustNet(t *testing.T) *spacxnet.Model {
	t.Helper()
	return spacxnet.MustModel(spacxnet.Default32())
}
