package dataflow

import "spacx/internal/network"

// ReuseReport is the MAESTRO-style per-operand reuse decomposition of a
// mapping (the quantity the paper's Section II-B2 argues over): for each
// operand, how many endpoints consume one transmission (spatial reuse, the
// broadcast width), how many times the fetched copies get used by MACs
// (temporal reuse at the PE), and how much the schedule re-fetches data
// beyond the theoretical minimum (fetch amplification).
type ReuseReport struct {
	Weights OperandReuse
	Ifmaps  OperandReuse
}

// OperandReuse decomposes one operand's movement.
type OperandReuse struct {
	// SpatialReuse is endpoints served per transmission (broadcast width).
	SpatialReuse int
	// TemporalReuse is MACs performed per byte delivered into a PE buffer.
	TemporalReuse float64
	// FetchAmplification is bytes transmitted over the theoretical minimum
	// (1.0 = every value fetched exactly once).
	FetchAmplification float64
}

// AnalyzeReuse derives the reuse report from a mapping profile.
func AnalyzeReuse(p Profile) ReuseReport {
	var rep ReuseReport
	macs := float64(p.MACs())
	for _, f := range p.Flows {
		ff := f.Normalize()
		if ff.Dir != network.GBToPE {
			continue
		}
		delivered := float64(ff.UniqueBytes) * float64(ff.DestPerDatum)
		op := OperandReuse{SpatialReuse: ff.DestPerDatum}
		if delivered > 0 {
			op.TemporalReuse = macs / delivered
		}
		switch ff.Class {
		case network.Weights:
			minBytes := float64(p.Layer.WeightCount() * WeightBytes)
			if minBytes > 0 {
				op.FetchAmplification = float64(ff.UniqueBytes) / minBytes
			}
			rep.Weights = op
		case network.Ifmaps:
			minBytes := float64(p.Layer.IfmapCount() * IfmapBytes)
			if minBytes > 0 {
				op.FetchAmplification = float64(ff.UniqueBytes) / minBytes
			}
			rep.Ifmaps = op
		}
	}
	return rep
}

// TotalReuse is the product of spatial and temporal reuse — the overall
// MAC-per-transmitted-byte leverage of the operand.
func (o OperandReuse) TotalReuse() float64 {
	return float64(o.SpatialReuse) * o.TemporalReuse
}
