package dataflow

import (
	"fmt"

	"spacx/internal/dnn"
	"spacx/internal/network"
)

// SPACX is the broadcast-enabled output-stationary dataflow of Section IV
// (nested-loop form in Figure 9):
//
//   - Output positions (the e/f plane) are mapped across the chiplets of a
//     cross-chiplet broadcast group (e2/f2) and across the single-chiplet
//     groups on each chiplet (e3/f3) — so weights, which are shared by all
//     positions of one output channel, ride the cross-chiplet broadcast.
//   - Output channels (k) are mapped across the PEs of a single-chiplet
//     group (k3) and across cross-chiplet groups (k1) — so input features,
//     which are shared by all channels at one position, ride the
//     single-chiplet broadcast.
//   - Psums never leave the PE (output stationary): only final output
//     features traverse the shared token-ring return wavelength.
//
// BandwidthAllocation enables the Section VI scheme: when weight and ifmap
// demands are unbalanced, idle wavelengths of one group carry multicast
// traffic of the other data type (cross-chiplet ifmap multicast on X
// wavelengths, single-chiplet weight multicast on Y wavelengths), at the
// cost of extra splitter retuning and extra E/O conversions.
type SPACX struct {
	BandwidthAllocation bool
}

// Name implements Dataflow.
func (d SPACX) Name() string {
	if d.BandwidthAllocation {
		return "SPACX"
	}
	return "SPACX-BA"
}

// Map implements Dataflow.
func (d SPACX) Map(l dnn.Layer, a Arch) (Profile, error) {
	if err := l.Validate(); err != nil {
		return Profile{}, err
	}
	if err := a.Validate(); err != nil {
		return Profile{}, err
	}
	gef, gk := a.GEF, a.GK
	if gef == 0 {
		gef = a.M
	}
	if gk == 0 {
		gk = a.N
	}
	crossGroups := a.M / gef
	singleGroups := a.N / gk

	// Spatial slots: output positions in flight and output channels in
	// flight (Figure 9 lines 4-6 and 9-11).
	posSlots := gef * singleGroups
	kSlots := gk * crossGroups

	ef := int(l.OutputPositions())
	usedPos := minInt(ef, posSlots)
	usedK := minInt(l.K, kSlots)
	efIters := ceilDiv(int64(ef), int64(posSlots))
	kIters := ceilDiv(int64(l.K), int64(kSlots))

	activeCrossGroups := minInt(crossGroups, int(ceilDiv(int64(l.K), int64(gk))))
	chipletsPerGroup := minInt(gef, int(ceilDiv(int64(usedPos), int64(singleGroups))))
	activeChiplets := chipletsPerGroup * activeCrossGroups

	cPerGroup := l.C / l.Groups
	// Work per output feature: the c/r/s loops (Figure 9 lines 13-15),
	// vectorized along c.
	perOutput := int64(l.R) * int64(l.S) * channelVectorOps(cPerGroup, a.VectorWidth)
	steps := efIters * kIters * perOutput

	// Per-PE residency follows the Figure 9 loop order: the ifmap window is
	// reused across the k2 loop (it has the higher reuse count), weights
	// are consumed once per output and are re-broadcast across e/f
	// iterations unless they fit in the space left next to the window —
	// the paper's stated trade of data locality for massive (cheap)
	// broadcast communication. Buffer shares are planned adaptively; the
	// execution controller configures them offline per layer (Section
	// III-F).
	weightsPerK := int64(cPerGroup) * int64(l.R) * int64(l.S) * WeightBytes
	window := int64(l.R) * int64(l.S) * int64(cPerGroup) * IfmapBytes
	sliding := int64(l.R) * int64(minInt(l.S, l.Stride)) * int64(cPerGroup) * IfmapBytes

	wFetch, iFetch := int64(1), int64(1)
	newPerPos := sliding
	capacity := int64(a.PEBufBytes) - psumMin
	if window+fifoMin <= capacity {
		// Window resident across k2; weights resident only if they fit in
		// the remainder.
		if weightsPerK > capacity-window {
			wFetch = efIters
		}
	} else {
		// Window cannot persist: re-broadcast it per k iteration.
		iFetch = kIters
		newPerPos = window
		if weightsPerK > capacity-fifoMin {
			wFetch = efIters
		}
	}

	// --- Weight flow: cross-chiplet broadcast on group X wavelengths. ---
	weightFlow := network.Flow{
		Class:       network.Weights,
		Dir:         network.GBToPE,
		UniqueBytes: int64(l.K) * weightsPerK * wFetch,
		Streams:     maxIntv(1, usedK),
		// Every weight is consumed by all positions of its output channel.
		DestPerDatum: maxIntv(1, usedPos),
		// The same weight stream feeds one waveguide per single-chiplet
		// group (the k3 PE position repeats on every local waveguide).
		TxCopies:    singleGroups,
		ChipletSpan: chipletsPerGroup,
		PESpan:      minInt(a.N, singleGroups*gk),
	}
	// --- Ifmap flow: single-chiplet broadcast on group Y wavelengths. ---
	// Sharing along k: all channels at a position need the same window;
	// grouped convolutions divide the sharing set.
	kShare := maxIntv(1, usedK/l.Groups)
	ifmapFlow := network.Flow{
		Class:        network.Ifmaps,
		Dir:          network.GBToPE,
		UniqueBytes:  int64(ef) * newPerPos * iFetch,
		Streams:      maxIntv(1, usedPos),
		DestPerDatum: kShare,
		// The same position lives in every active cross group.
		TxCopies:    activeCrossGroups,
		ChipletSpan: 1,
		PESpan:      gk,
	}

	// --- Output flow: token-ring return on the shared Y wavelengths. ---
	outputFlow := network.Flow{
		Class:        network.Outputs,
		Dir:          network.PEToGB,
		UniqueBytes:  l.OfmapCount() * OutputBytes,
		Streams:      maxIntv(1, minInt(usedPos*activeCrossGroups, a.M*singleGroups)),
		DestPerDatum: 1,
		TxCopies:     1,
		ChipletSpan:  activeChiplets,
		PESpan:       gk,
	}

	retunes := efIters + kIters
	if d.BandwidthAllocation {
		weightFlow, ifmapFlow, retunes = d.rebalance(l, a, weightFlow, ifmapFlow, retunes, kIters)
	}

	p := Profile{
		Layer:          l,
		Arch:           a.Name,
		ActiveChiplets: activeChiplets,
		ActivePEs:      minInt(usedPos*usedK, a.TotalPEs()),
		VectorSteps:    steps,
		Flows:          newFlows(weightFlow, ifmapFlow, outputFlow),
		RetuneEpochs:   retunes,
	}
	fillAccessCounts(&p, a)
	return p, nil
}

// rebalance implements the flexible bandwidth-allocation scheme of
// Section VI: the bound data type borrows idle wavelength-time from the
// other group. Borrowed transfers are multicasts (cross-chiplet ifmap
// multicast of convolution-reused values, single-chiplet weight multicast),
// which cost extra transmitter conversions and extra splitter retuning.
func (d SPACX) rebalance(l dnn.Layer, a Arch, w, i network.Flow, retunes, kIters int64) (network.Flow, network.Flow, int64) {
	wT := float64(w.UniqueBytes) / float64(w.Streams)
	iT := float64(i.UniqueBytes) / float64(i.Streams)
	if wT == iT || w.UniqueBytes == 0 || i.UniqueBytes == 0 {
		return w, i, retunes
	}
	// Balanced completion: both classes share the combined wavelength pool.
	// min(S,F2)*min(R,E2)*K1 chiplets share an input feature (Section VI),
	// so borrowed ifmap transfers are real multicasts as long as the layer
	// has convolution reuse; weight multicast reuse is E3*F3 local PEs.
	// Borrowed transfers serialize along the dimension their wavelength
	// group does not parallelize (Section VI's "can only be performed
	// sequentially"), so borrowing recovers only half of the idle
	// wavelength-time; the target is the midpoint between the unbalanced
	// and perfectly pooled schedules.
	total := float64(w.UniqueBytes + i.UniqueBytes)
	pool := float64(w.Streams + i.Streams)
	balanced := total / pool

	if wT > iT {
		// Weight-bound: single-chiplet weight multicast on idle Y channels.
		newStreams := (w.Streams + int(float64(w.UniqueBytes)/balanced+0.5) + 1) / 2
		if newStreams > w.Streams {
			w.Streams = newStreams
			w.TxCopies++ // the borrowed path modulates a second group
			retunes += kIters
		}
	} else {
		// Ifmap-bound: cross-chiplet ifmap multicast on idle X channels
		// (Figure 12). Only meaningful when the convolution actually
		// reuses input features across chiplets — the sharing set is
		// min(S,F2)*min(R,E2)*K1 chiplets (Section VI).
		gef := a.GEF
		if gef == 0 {
			gef = a.M
		}
		reuse := IfmapReuseChiplets(l, gef, gef, a.M/maxIntv(1, gef))
		if reuse > 1 || l.Kind == dnn.FC {
			newStreams := (i.Streams + int(float64(i.UniqueBytes)/balanced+0.5) + 1) / 2
			if newStreams > i.Streams {
				i.Streams = newStreams
				i.TxCopies++
				retunes += kIters
			}
		}
	}
	return w, i, retunes
}

// fillAccessCounts derives the memory-hierarchy access counts shared by all
// dataflows: per-MAC operand reads at the PE buffers (partial sums live in
// the MAC accumulator register and only touch the accumulation buffer once
// per output), arrival writes for delivered data, and GB reads per
// transmitted copy / writes per received output. On networks without
// broadcast support, every emulated-broadcast duplicate is a separate GB
// SRAM read.
func fillAccessCounts(p *Profile, a Arch) {
	macs := p.MACs()
	p.PEBufReadBytes = macs * (WeightBytes + IfmapBytes)
	broadcast := a.Net.Caps().CrossChipletBroadcast || a.Net.Caps().SingleChipletBroadcast
	var delivered int64
	var gbRead, gbWrite int64
	for _, f := range p.Flows {
		ff := f.Normalize()
		switch ff.Dir {
		case network.GBToPE:
			delivered += ff.UniqueBytes * int64(ff.DestPerDatum)
			if broadcast {
				gbRead += ff.UniqueBytes * int64(ff.TxCopies)
			} else {
				gbRead += ff.UniqueBytes * int64(ff.DestPerDatum)
			}
		case network.PEToGB:
			gbWrite += ff.UniqueBytes
		case network.PEToPE:
			// Relayed psums are read and written at both PE buffers.
			delivered += ff.UniqueBytes
			p.PEBufReadBytes += ff.UniqueBytes
		}
	}
	p.PEBufWriteBytes = p.Layer.OfmapCount()*PsumBytes + delivered
	p.GBReadBytes = gbRead
	p.GBWriteBytes = gbWrite
}

func maxIntv(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ Dataflow = SPACX{}

// String returns a human-readable description.
func (d SPACX) String() string {
	return fmt.Sprintf("SPACX dataflow (bandwidth allocation: %v)", d.BandwidthAllocation)
}
