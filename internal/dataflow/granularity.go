package dataflow

import (
	"fmt"

	"spacx/internal/dnn"
	"spacx/internal/network/spacxnet"
	"spacx/internal/photonic"
)

// Section V: broadcast granularity exploration. Finer cross-chiplet or
// single-chiplet granularity lets layers whose e/f plane or channel count
// does not match the machine dimensions fill otherwise-idle PEs.

// IfmapReuseChiplets is the Section VI sharing-set size: the number of
// chiplets that reuse one input feature under the SPACX mapping,
// min(S, F2) * min(R, E2) * K1, where (E2, F2) are the cross-group spatial
// factors and K1 the cross-group count. It bounds the usefulness of the
// cross-chiplet ifmap multicast of Figure 12.
func IfmapReuseChiplets(l dnn.Layer, e2, f2, k1 int) int {
	if e2 < 1 {
		e2 = 1
	}
	if f2 < 1 {
		f2 = 1
	}
	if k1 < 1 {
		k1 = 1
	}
	return minInt(l.S, f2) * minInt(l.R, e2) * k1
}

// WeightReusePEs is the corresponding single-chiplet sharing set: E3*F3
// local PEs share a weight (Section VI), where (E3, F3) are the
// single-group spatial factors.
func WeightReusePEs(e3, f3 int) int {
	if e3 < 1 {
		e3 = 1
	}
	if f3 < 1 {
		f3 = 1
	}
	return e3 * f3
}

// GranularityPoint is one candidate configuration's outcome for a layer.
type GranularityPoint struct {
	GEF, GK int
	// SpatialUtilization is active PEs over total PEs.
	SpatialUtilization float64
	ActivePEs          int
}

// SpatialUtilization maps the layer with the SPACX dataflow under the given
// granularities and returns the fraction of PEs occupied.
func SpatialUtilization(l dnn.Layer, m, n, gef, gk int) (GranularityPoint, error) {
	cfg, err := spacxnet.New(m, n, gef, gk, photonic.Moderate())
	if err != nil {
		return GranularityPoint{}, err
	}
	arch := Arch{
		Name: "explore", M: m, N: n,
		VectorWidth: 1, ClockHz: 1e9,
		PEBufBytes: 4 * 1024, GBBytes: 2 << 20,
		GEF: gef, GK: gk,
		Net: spacxnet.MustModel(cfg),
	}
	p, err := SPACX{}.Map(l, arch)
	if err != nil {
		return GranularityPoint{}, err
	}
	return GranularityPoint{
		GEF: gef, GK: gk,
		SpatialUtilization: float64(p.ActivePEs) / float64(m*n),
		ActivePEs:          p.ActivePEs,
	}, nil
}

// ExploreGranularity evaluates every power-of-two granularity pair for the
// layer and returns all points plus the index of the best one (highest
// spatial utilization; ties broken toward coarser granularity, which needs
// fewer waveguides).
func ExploreGranularity(l dnn.Layer, m, n int) ([]GranularityPoint, int, error) {
	if err := l.Validate(); err != nil {
		return nil, 0, err
	}
	var pts []GranularityPoint
	best := -1
	for gef := m; gef >= 1; gef /= 2 {
		for gk := n; gk >= 1; gk /= 2 {
			if gef+gk > photonic.MaxWavelengthsPerWaveguide {
				continue
			}
			pt, err := SpatialUtilization(l, m, n, gef, gk)
			if err != nil {
				return nil, 0, fmt.Errorf("dataflow: explore (%d,%d): %w", gef, gk, err)
			}
			pts = append(pts, pt)
			if best < 0 || pt.SpatialUtilization > pts[best].SpatialUtilization {
				best = len(pts) - 1
			}
		}
	}
	if best < 0 {
		return nil, 0, fmt.Errorf("dataflow: no feasible granularity for M=%d N=%d", m, n)
	}
	return pts, best, nil
}
