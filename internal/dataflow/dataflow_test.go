package dataflow

import (
	"strings"
	"testing"
	"testing/quick"

	"spacx/internal/dnn"
	"spacx/internal/network"
	"spacx/internal/network/spacxnet"
)

// testArch returns the evaluation SPACX architecture (Section VII-C).
func testArch(t *testing.T) Arch {
	t.Helper()
	return Arch{
		Name: "SPACX", M: 32, N: 32,
		VectorWidth: 32, ClockHz: 1e9,
		PEBufBytes: 4 * 1024, GBBytes: 2 << 20,
		GEF: 8, GK: 16,
		Net: spacxnet.MustModel(spacxnet.Default32()),
	}
}

func TestArchValidate(t *testing.T) {
	a := testArch(t)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := a
	bad.GEF = 7
	if err := bad.Validate(); err == nil {
		t.Error("GEF=7 should not divide M=32")
	}
	bad = a
	bad.Net = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing network should fail")
	}
	bad = a
	bad.VectorWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero vector width should fail")
	}
}

func TestSPACXFig8Example(t *testing.T) {
	// The worked example of Figure 8: [r s e f c k] = [2 2 4 4 3 8] on the
	// 8-chiplet, 8-PE architecture of Figure 5 (granularity A: GEF=8,GK=8).
	l := dnn.NewConv("fig8", 5, 5, 2, 2, 3, 8, 1, 0)
	a := Arch{
		Name: "SPACX8", M: 8, N: 8, VectorWidth: 1, ClockHz: 1e9,
		PEBufBytes: 4 * 1024, GBBytes: 2 << 20, GEF: 8, GK: 8,
		Net: spacxnet.MustModel(mustCfg(t, 8, 8, 8, 8)),
	}
	p, err := SPACX{BandwidthAllocation: true}.Map(l, a)
	if err != nil {
		t.Fatal(err)
	}
	// 16 output positions over 8 chiplets (E2=2, F2=3... the paper maps two
	// rows per chiplet => 8 position slots, 2 e/f iterations), 8 output
	// channels over the 8 PEs of each chiplet.
	if p.ActiveChiplets != 8 {
		t.Errorf("active chiplets = %d, want 8", p.ActiveChiplets)
	}
	if p.ActivePEs != 64 {
		t.Errorf("active PEs = %d, want 64", p.ActivePEs)
	}
	// Work conservation: the schedule's MAC capacity covers the layer.
	capacity := p.VectorSteps * int64(p.ActivePEs) * int64(a.VectorWidth)
	if capacity < p.MACs() {
		t.Errorf("schedule capacity %d < MACs %d", capacity, p.MACs())
	}
}

func mustCfg(t *testing.T, m, n, gef, gk int) spacxnet.Config {
	t.Helper()
	c, err := spacxnet.New(m, n, gef, gk, spacxnet.Default32().Params)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSPACXWorkConservationProperty(t *testing.T) {
	a := testArch(t)
	df := SPACX{BandwidthAllocation: true}
	f := func(r, c, k, e uint8) bool {
		layer := dnn.NewSameConv("q", int(e%64)+1, 2*int(r%2)+1, int(c)+1, int(k)+1, 1)
		p, err := df.Map(layer, a)
		if err != nil {
			return false
		}
		capacity := p.VectorSteps * int64(p.ActivePEs) * int64(a.VectorWidth)
		return capacity >= p.MACs() && p.ActivePEs <= a.TotalPEs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSPACXFlowsValid(t *testing.T) {
	a := testArch(t)
	for _, m := range dnn.Benchmarks() {
		for _, l := range m.Layers {
			p, err := SPACX{BandwidthAllocation: true}.Map(l, a)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, l.Name, err)
			}
			if len(p.Flows) != 3 {
				t.Fatalf("%s: flows = %d, want 3", l.Name, len(p.Flows))
			}
			for _, f := range p.Flows {
				if err := f.Validate(); err != nil {
					t.Errorf("%s/%s: %v", m.Name, l.Name, err)
				}
				if f.UniqueBytes <= 0 {
					t.Errorf("%s/%s %v flow has no bytes", m.Name, l.Name, f.Class)
				}
			}
		}
	}
}

func TestSPACXTrafficAtLeastUniqueData(t *testing.T) {
	// Weights must traverse the network at least once each; ifmaps at least
	// the touched volume for stride-1 convs.
	a := testArch(t)
	l := dnn.NewSameConv("c3", 56, 3, 64, 64, 1)
	p, err := SPACX{BandwidthAllocation: true}.Map(l, a)
	if err != nil {
		t.Fatal(err)
	}
	var wBytes, iBytes int64
	for _, f := range p.Flows {
		switch f.Class {
		case network.Weights:
			wBytes = f.UniqueBytes
		case network.Ifmaps:
			iBytes = f.UniqueBytes
		}
	}
	if wBytes < l.WeightCount() {
		t.Errorf("weight traffic %d < unique weights %d", wBytes, l.WeightCount())
	}
	if iBytes < l.IfmapCount()/2 {
		t.Errorf("ifmap traffic %d implausibly below touched volume %d", iBytes, l.IfmapCount())
	}
}

func TestSPACXBroadcastWidths(t *testing.T) {
	a := testArch(t)
	l := dnn.NewSameConv("c3", 56, 3, 64, 64, 1)
	p, _ := SPACX{BandwidthAllocation: false}.Map(l, a)
	for _, f := range p.Flows {
		switch f.Class {
		case network.Weights:
			// posSlots = GEF * (N/GK) = 8*2 = 16 positions share a weight.
			if f.DestPerDatum != 16 {
				t.Errorf("weight broadcast width = %d, want 16", f.DestPerDatum)
			}
		case network.Ifmaps:
			// usedK = min(64, GK*crossGroups=64) channels share a window.
			if f.DestPerDatum != 64 {
				t.Errorf("ifmap broadcast width = %d, want 64", f.DestPerDatum)
			}
		}
	}
}

func TestSPACXFCLowUtilization(t *testing.T) {
	// Section VIII-A1: in FC layers "the computation time in SPACX is
	// higher ... because the small e/f values have led to low chiplet
	// utilization".
	a := testArch(t)
	fc := dnn.NewFC("fc", 4096, 4096)
	p, err := SPACX{BandwidthAllocation: true}.Map(fc, a)
	if err != nil {
		t.Fatal(err)
	}
	if p.Utilization(a) > 0.1 {
		t.Errorf("FC utilization = %v, expected low (single output position)", p.Utilization(a))
	}
	conv := dnn.NewSameConv("c", 56, 3, 64, 64, 1)
	pc, _ := SPACX{BandwidthAllocation: true}.Map(conv, a)
	if pc.Utilization(a) <= p.Utilization(a) {
		t.Errorf("conv utilization %v should exceed FC %v", pc.Utilization(a), p.Utilization(a))
	}
}

func TestBandwidthAllocationBalances(t *testing.T) {
	a := testArch(t)

	// A late-stage 1x1 conv (ResNet-50 L18 shape) is weight-bound: BA
	// should borrow Y wavelengths for single-chiplet weight multicast.
	wb := dnn.NewSameConv("l18", 7, 1, 2048, 512, 1)
	on, err := SPACX{BandwidthAllocation: true}.Map(wb, a)
	if err != nil {
		t.Fatal(err)
	}
	off, err := SPACX{BandwidthAllocation: false}.Map(wb, a)
	if err != nil {
		t.Fatal(err)
	}
	var wOn, wOff network.Flow
	for i, f := range on.Flows {
		if f.Class == network.Weights {
			wOn, wOff = f, off.Flows[i]
		}
	}
	if wOn.Streams <= wOff.Streams {
		t.Errorf("BA should add weight streams on a weight-bound layer: %d vs %d",
			wOn.Streams, wOff.Streams)
	}
	if a.Net.TransferTime(wOn) >= a.Net.TransferTime(wOff) {
		t.Error("BA did not reduce weight transfer time")
	}

	// An early 3x3 conv is ifmap-bound: BA should borrow X wavelengths for
	// cross-chiplet ifmap multicast (Figure 12).
	ib := dnn.NewSameConv("l3", 56, 3, 64, 64, 1)
	on, err = SPACX{BandwidthAllocation: true}.Map(ib, a)
	if err != nil {
		t.Fatal(err)
	}
	off, _ = SPACX{BandwidthAllocation: false}.Map(ib, a)
	var iOn, iOff network.Flow
	for i, f := range on.Flows {
		if f.Class == network.Ifmaps {
			iOn, iOff = f, off.Flows[i]
		}
	}
	if iOn.Streams <= iOff.Streams {
		t.Errorf("BA should add ifmap streams on an ifmap-bound layer: %d vs %d",
			iOn.Streams, iOff.Streams)
	}
	if iOn.TxCopies <= iOff.TxCopies {
		t.Error("borrowed multicast should cost extra transmitter copies")
	}
}

func TestWSPsumFlowExists(t *testing.T) {
	a := testArch(t)
	l := dnn.NewSameConv("c", 28, 3, 512, 512, 1)
	p, err := WS{}.Map(l, a)
	if err != nil {
		t.Fatal(err)
	}
	var hasPsum bool
	for _, f := range p.Flows {
		if f.Class == network.Psums && f.Dir == network.PEToPE {
			hasPsum = true
			if f.UniqueBytes <= 0 {
				t.Error("psum flow empty")
			}
		}
	}
	if !hasPsum {
		t.Error("WS with C=512 must spatially reduce psums")
	}
	// Work conservation for WS too.
	capacity := p.VectorSteps * int64(p.ActivePEs) * int64(a.VectorWidth)
	if capacity < p.MACs() {
		t.Errorf("WS schedule capacity %d < MACs %d", capacity, p.MACs())
	}
}

func TestOSEFWeightsFullyShared(t *testing.T) {
	a := testArch(t)
	l := dnn.NewSameConv("c", 56, 3, 64, 64, 1)
	p, err := OSEF{}.Map(l, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Flows {
		if f.Class == network.Weights {
			// Every active PE consumes every weight.
			if f.DestPerDatum < p.ActivePEs/2 {
				t.Errorf("OS(e/f) weight broadcast width = %d, want ~%d",
					f.DestPerDatum, p.ActivePEs)
			}
		}
		if f.Class == network.Psums {
			t.Error("output-stationary dataflow must not move psums")
		}
	}
	capacity := p.VectorSteps * int64(p.ActivePEs) * int64(a.VectorWidth)
	if capacity < p.MACs() {
		t.Errorf("OS(e/f) capacity %d < MACs %d", capacity, p.MACs())
	}
}

func TestAllDataflowsOnAllBenchmarks(t *testing.T) {
	a := testArch(t)
	dfs := []Dataflow{SPACX{BandwidthAllocation: true}, SPACX{}, WS{}, OSEF{}}
	for _, df := range dfs {
		for _, m := range dnn.Benchmarks() {
			for _, l := range m.Layers {
				p, err := df.Map(l, a)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", df.Name(), m.Name, l.Name, err)
				}
				if p.VectorSteps <= 0 {
					t.Errorf("%s/%s: zero steps", df.Name(), l.Name)
				}
				if p.PEBufReadBytes <= 0 || p.GBReadBytes <= 0 {
					t.Errorf("%s/%s: missing access counts", df.Name(), l.Name)
				}
				capacity := p.VectorSteps * int64(p.ActivePEs) * int64(a.VectorWidth)
				if capacity < p.MACs() {
					t.Errorf("%s/%s/%s: capacity %d < MACs %d",
						df.Name(), m.Name, l.Name, capacity, p.MACs())
				}
			}
		}
	}
}

func TestDataflowNames(t *testing.T) {
	if (SPACX{BandwidthAllocation: true}).Name() != "SPACX" {
		t.Error("SPACX with BA should be named SPACX")
	}
	if (SPACX{}).Name() != "SPACX-BA" {
		t.Error("SPACX without BA should be named SPACX-BA (paper's label)")
	}
	if (WS{}).Name() != "WS" || (OSEF{}).Name() != "OS(e/f)" {
		t.Error("unexpected dataflow names")
	}
}

func TestExplain(t *testing.T) {
	a := testArch(t)
	l := dnn.NewSameConv("c3", 56, 3, 64, 64, 1)
	p, err := SPACX{BandwidthAllocation: true}.Map(l, a)
	if err != nil {
		t.Fatal(err)
	}
	s := Explain(p, a)
	for _, want := range []string{"spatial:", "temporal:", "flows:", "weights",
		"ifmaps", "outputs", "broadcast", "memory:"} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain missing %q:\n%s", want, s)
		}
	}
}

func TestByteCount(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for in, want := range cases {
		if got := byteCount(in); got != want {
			t.Errorf("byteCount(%d) = %q, want %q", in, got, want)
		}
	}
}
