package dataflow

import (
	"spacx/internal/dnn"
	"spacx/internal/network"
)

// WS is the weight-stationary dataflow of Simba [13] as characterized in
// Section VIII-C: output channels (k) are mapped across chiplets (and across
// spare PEs), input channels (c) are mapped across the PEs of a chiplet, and
// weights are pinned in the large per-PE buffers. Parallel mapping along c
// means partial sums must be spatially reduced across PEs — cheap on an
// electrical mesh, but on a photonic network it forces E/O + O/E conversion
// pairs for every psum hop. Input features are needed by every output
// channel, so they are (emulated-)broadcast to all k-holding chiplets.
type WS struct{}

// Name implements Dataflow.
func (WS) Name() string { return "WS" }

// Map implements Dataflow.
func (WS) Map(l dnn.Layer, a Arch) (Profile, error) {
	if err := l.Validate(); err != nil {
		return Profile{}, err
	}
	if err := a.Validate(); err != nil {
		return Profile{}, err
	}
	cPerGroup := l.C / l.Groups

	// Chiplet level: split K across chiplets; spare chiplets split the
	// output plane.
	kC := minInt(a.M, l.K)
	posC := a.M / kC // chiplets sharing the same k, splitting e/f

	// PE level: split c across PEs first (each PE covers VectorWidth
	// channels), then spare PEs take extra k. A step-minimizing split
	// search is tempting here, but the weight-stationary machines are
	// communication-bound: wider kPE multiplies the ifmap duplication
	// (every extra k-parallel PE is another emulated-broadcast
	// destination), so the channel-first heuristic — which is also what
	// keeps weights resident — is the stronger mapping in practice.
	cPE := minInt(a.N, int(ceilDiv(int64(cPerGroup), int64(a.VectorWidth))))
	kPE := minInt(a.N/cPE, int(ceilDiv(int64(l.K), int64(kC))))
	if kPE < 1 {
		kPE = 1
	}

	ef := int(l.OutputPositions())
	kIters := ceilDiv(int64(l.K), int64(kC*kPE))
	posIters := ceilDiv(int64(ef), int64(posC))

	perOutput := int64(l.R) * int64(l.S) *
		channelVectorOps(int(ceilDiv(int64(cPerGroup), int64(cPE))), a.VectorWidth)
	steps := kIters * posIters * perOutput

	buf := splitBuffer(a.PEBufBytes)

	// --- Weights: stationary; fetched once if the per-PE residency fits.
	perPEWeights := kIters * int64(l.R) * int64(l.S) *
		ceilDiv(int64(cPerGroup), int64(cPE)) * WeightBytes
	wFetch := int64(1)
	if perPEWeights > int64(buf.weight) {
		wFetch = posIters // re-stream weights per output tile
	}
	weightFlow := network.Flow{
		Class:        network.Weights,
		Dir:          network.GBToPE,
		UniqueBytes:  l.WeightCount() * WeightBytes * wFetch,
		Streams:      maxIntv(1, minInt(kC*kPE*cPE, a.TotalPEs())),
		DestPerDatum: maxIntv(1, posC), // chiplets splitting e/f share k's weights
		TxCopies:     1,
		ChipletSpan:  kC * posC,
		PESpan:       cPE * kPE,
	}

	// --- Ifmaps: every k-chiplet needs the input volume for its positions.
	window := int64(l.R) * int64(l.S) * int64(cPerGroup) * IfmapBytes
	iFetch := int64(1)
	if window > int64(buf.ifmap)*int64(cPE) {
		iFetch = kIters
	}
	newPerPos := int64(l.R) * int64(minInt(l.S, l.Stride)) * int64(cPerGroup) * IfmapBytes
	ifmapFlow := network.Flow{
		Class:       network.Ifmaps,
		Dir:         network.GBToPE,
		UniqueBytes: int64(ef) * newPerPos * iFetch / int64(posC),
		Streams:     maxIntv(1, posC),
		// The same input feature feeds every chiplet holding a different k
		// (and every extra-k PE inside a chiplet).
		DestPerDatum: maxIntv(1, kC*kPE/l.Groups),
		TxCopies:     1,
		ChipletSpan:  kC,
		PESpan:       cPE,
	}

	// --- Psums: spatial reduction across the cPE channel-parallel PEs.
	var flowBuf [4]network.Flow
	flows := append(flowBuf[:0], weightFlow, ifmapFlow)
	if cPE > 1 {
		flows = append(flows, network.Flow{
			Class:        network.Psums,
			Dir:          network.PEToPE,
			UniqueBytes:  l.OfmapCount() * PsumBytes * int64(cPE-1),
			Streams:      maxIntv(1, minInt(a.TotalPEs()/2, kC*kPE*(cPE-1))),
			DestPerDatum: 1,
			TxCopies:     1,
			ChipletSpan:  kC * posC,
			PESpan:       cPE,
		})
	}

	flows = append(flows, network.Flow{
		Class:        network.Outputs,
		Dir:          network.PEToGB,
		UniqueBytes:  l.OfmapCount() * OutputBytes,
		Streams:      maxIntv(1, kC*posC),
		DestPerDatum: 1,
		TxCopies:     1,
		ChipletSpan:  kC * posC,
		PESpan:       kPE,
	})

	p := Profile{
		Layer:          l,
		Arch:           a.Name,
		ActiveChiplets: kC * posC,
		ActivePEs:      minInt(kC*posC*cPE*kPE, a.TotalPEs()),
		VectorSteps:    steps,
		Flows:          newFlows(flows...),
	}
	fillAccessCounts(&p, a)
	return p, nil
}

var _ Dataflow = WS{}
