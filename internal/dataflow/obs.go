package dataflow

import (
	"spacx/internal/network"
	"spacx/internal/obs"
)

// RecordProfile publishes a mapping's decisions — spatial occupancy, PE
// utilization, per-class broadcast widths and stream counts, retune epochs —
// to an observability recorder. The simulator calls it after Map when
// observability is enabled; with the no-op recorder it returns immediately.
func RecordProfile(rec obs.Recorder, p Profile, a Arch) {
	if !rec.Enabled() {
		return
	}
	rec.Count("spacx_dataflow_mappings_total", 1, obs.Label{Key: "arch", Value: a.Name})
	rec.Observe("spacx_dataflow_active_pes", float64(p.ActivePEs))
	rec.Observe("spacx_dataflow_active_chiplets", float64(p.ActiveChiplets))
	rec.Observe("spacx_dataflow_pe_utilization_ratio", p.Utilization(a))
	if p.RetuneEpochs > 0 {
		rec.Observe("spacx_dataflow_retune_epochs", float64(p.RetuneEpochs))
	}
	for _, f := range p.Flows {
		ff := f.Normalize()
		cls := obs.Label{Key: "class", Value: ff.Class.String()}
		rec.Observe("spacx_dataflow_broadcast_width", float64(ff.DestPerDatum), cls)
		rec.Observe("spacx_dataflow_streams", float64(ff.Streams), cls)
	}
}

// DirLabel renders a flow direction as a metrics-friendly label value
// ("gb_to_pe" rather than the display form "gb->pe").
func DirLabel(d network.Direction) string {
	switch d {
	case network.GBToPE:
		return "gb_to_pe"
	case network.PEToGB:
		return "pe_to_gb"
	case network.PEToPE:
		return "pe_to_pe"
	default:
		return "unknown"
	}
}
