package dataflow

import (
	"testing"

	"spacx/internal/dnn"
	"spacx/internal/network/spacxnet"
)

// FuzzTiling maps arbitrary valid layer shapes through all three dataflows
// and checks the tiling invariants: no panics, utilization in (0, 1], and
// every emitted network flow internally consistent. The raw fuzz inputs are
// folded into the valid ranges rather than rejected, so every execution
// exercises the mapping code.
func FuzzTiling(f *testing.F) {
	// Seeds: the Figure 8 running example, a 1x1 conv, a depthwise conv,
	// an FC layer, and a stride-2 downsampling conv.
	f.Add(56, 3, 64, 64, 1, 1, 1)
	f.Add(56, 1, 64, 256, 1, 0, 1)
	f.Add(112, 3, 32, 32, 1, 1, 32)
	f.Add(1, 1, 2048, 1000, 1, 0, 1)
	f.Add(224, 7, 3, 64, 2, 3, 1)

	arch := Arch{
		Name: "SPACX", M: 32, N: 32,
		VectorWidth: 32, ClockHz: 1e9,
		PEBufBytes: 4 * 1024, GBBytes: 2 << 20,
		GEF: 8, GK: 16,
		Net: spacxnet.MustModel(spacxnet.Default32()),
	}
	dataflows := []Dataflow{WS{}, OSEF{}, SPACX{}, SPACX{BandwidthAllocation: true}}

	// fold maps an arbitrary int into [1, max].
	fold := func(v, max int) int {
		if v < 0 {
			v = -v
		}
		return v%max + 1
	}

	f.Fuzz(func(t *testing.T, h, r, c, k, stride, pad, groups int) {
		h = fold(h, 128)
		r = fold(r, 11)
		c = fold(c, 1024)
		k = fold(k, 1024)
		stride = fold(stride, 4)
		pad = fold(pad, r) - 1 // [0, r-1]
		groups = fold(groups, 4)
		if c%groups != 0 || k%groups != 0 {
			groups = 1
		}

		l := dnn.NewConv("fuzz", h, h, r, r, c, k, stride, pad)
		l.Groups = groups
		if l.Validate() != nil {
			return // fold can still produce kernels larger than the padded input
		}

		for _, df := range dataflows {
			p, err := df.Map(l, arch)
			if err != nil {
				// Rejecting a shape is fine; mapping it wrongly is not.
				continue
			}
			u := p.Utilization(arch)
			if !(u > 0 && u <= 1) {
				t.Errorf("%s: utilization = %v for %v, want in (0, 1]", df.Name(), u, l)
			}
			if p.VectorSteps <= 0 {
				t.Errorf("%s: VectorSteps = %d for %v, want > 0", df.Name(), p.VectorSteps, l)
			}
			for _, flow := range p.Flows {
				if err := flow.Normalize().Validate(); err != nil {
					t.Errorf("%s: invalid flow for %v: %v", df.Name(), l, err)
				}
			}
		}
	})
}
