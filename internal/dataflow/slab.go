package dataflow

import (
	"sync"

	"spacx/internal/network"
)

// Profiles — and the sim.LayerResults built from them — are memoized and
// retained indefinitely by the experiment engine, so a mapper's per-layer
// flow slice can never be recycled. It can, however, be batched: newFlows
// carves each 3-4 element slice out of a pooled slab block, turning one
// small garbage-collected allocation per Map call into one block allocation
// per ~hundred calls. Carved memory is permanently owned by its Profile;
// the slab only ever advances, it never reuses what it handed out.
//
// newFloats is the same scheme for the per-flow transfer-time slices that
// MeasureFlows carves (sim.LayerResult.FlowSecs retains them): amortized,
// the two slabs are the entire steady-state byte cost of a layer evaluation
// — the ~216 B/op that benchmarks report against 0 allocs/op.

const (
	flowSlabCap  = 512
	floatSlabCap = 1024
)

var flowSlabs = sync.Pool{New: func() interface{} { return new(flowSlab) }}

type flowSlab struct{ buf []network.Flow }

// newFlows copies flows into a slice carved from a pooled slab. The result
// is clipped to full capacity, so a caller appending to it cannot clobber a
// later carving.
func newFlows(flows ...network.Flow) []network.Flow {
	n := len(flows)
	if n == 0 {
		return nil
	}
	s := flowSlabs.Get().(*flowSlab)
	if cap(s.buf)-len(s.buf) < n {
		s.buf = make([]network.Flow, 0, flowSlabCap)
	}
	lo := len(s.buf)
	out := s.buf[lo : lo+n : lo+n]
	s.buf = s.buf[:lo+n]
	flowSlabs.Put(s)
	copy(out, flows)
	return out
}

var floatSlabs = sync.Pool{New: func() interface{} { return new(floatSlab) }}

type floatSlab struct{ buf []float64 }

// newFloats returns a zeroed slice of length n carved from a pooled slab,
// clipped to full capacity.
func newFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	if n > floatSlabCap {
		return make([]float64, n)
	}
	s := floatSlabs.Get().(*floatSlab)
	if cap(s.buf)-len(s.buf) < n {
		s.buf = make([]float64, 0, floatSlabCap)
	}
	lo := len(s.buf)
	out := s.buf[lo : lo+n : lo+n]
	s.buf = s.buf[:lo+n]
	floatSlabs.Put(s)
	return out
}
