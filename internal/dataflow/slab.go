package dataflow

import (
	"sync"

	"spacx/internal/network"
)

// Profiles — and the sim.LayerResults built from them — are memoized and
// retained indefinitely by the experiment engine, so a mapper's per-layer
// flow slice can never be recycled. It can, however, be batched: newFlows
// carves each 3-4 element slice out of a pooled slab block, turning one
// small garbage-collected allocation per Map call into one block allocation
// per ~hundred layers. Carved memory is permanently owned by its Profile;
// the slab only ever advances, it never reuses what it handed out.

const flowSlabCap = 512

var flowSlabs = sync.Pool{New: func() interface{} { return new(flowSlab) }}

type flowSlab struct{ buf []network.Flow }

// newFlows copies flows into a slice carved from a pooled slab. The result
// is clipped to full capacity, so a caller appending to it cannot clobber a
// later carving.
func newFlows(flows ...network.Flow) []network.Flow {
	n := len(flows)
	if n == 0 {
		return nil
	}
	s := flowSlabs.Get().(*flowSlab)
	if cap(s.buf)-len(s.buf) < n {
		s.buf = make([]network.Flow, 0, flowSlabCap)
	}
	lo := len(s.buf)
	out := s.buf[lo : lo+n : lo+n]
	s.buf = s.buf[:lo+n]
	flowSlabs.Put(s)
	copy(out, flows)
	return out
}
