// Tests of the public API surface: everything a downstream user touches
// must work through the root package alone.
package spacx_test

import (
	"testing"

	"spacx"
)

func TestPublicPresets(t *testing.T) {
	for _, acc := range []spacx.Accelerator{
		spacx.SPACX(), spacx.SPACXNoBA(), spacx.Simba(), spacx.POPSTAR(),
	} {
		if err := acc.Arch.Validate(); err != nil {
			t.Errorf("%s: %v", acc.Name(), err)
		}
	}
}

func TestPublicRun(t *testing.T) {
	res, err := spacx.Run(spacx.SPACX(), spacx.ResNet50(), spacx.WholeInference)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecSec <= 0 || res.TotalEnergy <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Model != "ResNet-50" || res.Accel != "SPACX" {
		t.Errorf("labels wrong: %s %s", res.Model, res.Accel)
	}
	if len(res.Layers) != 21 {
		t.Errorf("layers = %d, want 21", len(res.Layers))
	}
}

func TestPublicRunLayer(t *testing.T) {
	l := spacx.VGG16().Layers[0]
	r, err := spacx.RunLayer(spacx.Simba(), l, spacx.LayerByLayer)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExecSec < r.ComputeSec {
		t.Error("exec below compute")
	}
}

func TestPublicModels(t *testing.T) {
	if len(spacx.Benchmarks()) != 4 {
		t.Error("expected 4 benchmark models")
	}
	m, err := spacx.ModelByName("densenet201")
	if err != nil || m.Name != "DenseNet-201" {
		t.Errorf("ModelByName: %v %v", m.Name, err)
	}
}

func TestPublicCustomAccelerator(t *testing.T) {
	acc, err := spacx.SPACXCustom(16, 16, 4, 8, spacx.AggressiveParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spacx.Run(acc, spacx.VGG16(), spacx.LayerByLayer)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecSec <= 0 {
		t.Error("no result")
	}
	if _, err := spacx.SPACXCustom(16, 16, 5, 8, spacx.ModerateParams(), true); err == nil {
		t.Error("invalid granularity should fail")
	}
}

func TestPublicPowerSurface(t *testing.T) {
	pts, err := spacx.PowerSurface(16, 16, spacx.ModerateParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty surface")
	}
	for _, p := range pts {
		if p.OverallW() <= 0 {
			t.Errorf("bad point %+v", p)
		}
	}
}

func TestPublicNetworkConfig(t *testing.T) {
	cfg, err := spacx.NewNetworkConfig(32, 32, 8, 16, spacx.ModerateParams())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Wavelengths() != 24 {
		t.Errorf("wavelengths = %d, want 24", cfg.Wavelengths())
	}
}

func TestPublicDataflows(t *testing.T) {
	names := map[string]bool{}
	for _, df := range []spacx.Dataflow{
		spacx.SPACXDataflow(), spacx.WeightStationary(), spacx.OutputStationaryEF(),
	} {
		names[df.Name()] = true
	}
	for _, want := range []string{"SPACX", "WS", "OS(e/f)"} {
		if !names[want] {
			t.Errorf("missing dataflow %q", want)
		}
	}
}

func TestPublicExploreAndExplain(t *testing.T) {
	l := spacx.ResNet50().Layers[2]
	pts, best, err := spacx.ExploreGranularity(l, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || best < 0 || best >= len(pts) {
		t.Fatalf("bad explore result: %d points, best %d", len(pts), best)
	}
	acc := spacx.SPACX()
	r, err := spacx.RunLayer(acc, l, spacx.WholeInference)
	if err != nil {
		t.Fatal(err)
	}
	s := spacx.ExplainMapping(r, acc)
	if len(s) == 0 {
		t.Error("empty explanation")
	}
}
