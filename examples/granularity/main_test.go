package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestGranularityRuns is the smoke test: the example must complete without
// error and report the three power minima of the Figure 19 surface.
func TestGranularityRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"power vs broadcast granularity",
		"<- overall min",
		"laser minimum at",
		"overall minimum at (k=16, e/f=16)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
