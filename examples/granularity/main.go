// granularity explores the broadcast-granularity design space of Section V
// and Section VIII-E1 (Figure 19): for every (k, e/f) granularity pair it
// prints the laser, transceiver, and overall network power, and marks the
// minima the paper identifies.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"spacx"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	pts, err := spacx.PowerSurface(32, 32, spacx.ModerateParams())
	if err != nil {
		return err
	}

	type key struct{ gk, gef int }
	minOf := func(metric func(spacx.PowerPoint) float64) key {
		var best key
		bestV := 0.0
		for _, p := range pts {
			if p.GK < 4 || p.GEF < 4 {
				continue
			}
			if v := metric(p); best.gk == 0 || v < bestV {
				best, bestV = key{p.GK, p.GEF}, v
			}
		}
		return best
	}
	laserMin := minOf(func(p spacx.PowerPoint) float64 { return p.LaserW })
	xcvrMin := minOf(func(p spacx.PowerPoint) float64 { return p.TransceiverW() })
	overallMin := minOf(func(p spacx.PowerPoint) float64 { return p.OverallW() })

	fmt.Fprintln(w, "SPACX photonic network power vs broadcast granularity (moderate params)")
	fmt.Fprintf(w, "%4s %4s %10s %12s %11s\n", "k", "e/f", "laser(W)", "xcvr(W)", "overall(W)")
	for _, p := range pts {
		if p.GK < 4 || p.GEF < 4 {
			continue
		}
		mark := ""
		if (key{p.GK, p.GEF}) == overallMin {
			mark = "  <- overall min"
		}
		fmt.Fprintf(w, "%4d %4d %10.3f %12.3f %11.3f%s\n",
			p.GK, p.GEF, p.LaserW, p.TransceiverW(), p.OverallW(), mark)
	}
	fmt.Fprintf(w, "\nlaser minimum at (k=%d, e/f=%d)        — paper: (4, 4)\n", laserMin.gk, laserMin.gef)
	fmt.Fprintf(w, "transceiver minimum at (k=%d, e/f=%d) — paper: (32, 32)\n", xcvrMin.gk, xcvrMin.gef)
	fmt.Fprintf(w, "overall minimum at (k=%d, e/f=%d)     — paper: (16, 16)\n", overallMin.gk, overallMin.gef)
	fmt.Fprintln(w, "deployment choice (balanced): e/f=8, k=16 (Section VII-C)")
	return nil
}
