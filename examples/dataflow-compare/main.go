// dataflow-compare reproduces the Figure 17 ablation: the same SPACX
// photonic architecture driven by three different dataflows — Simba's
// weight-stationary WS, ShiDianNao's output-stationary OS(e/f), and the
// broadcast-enabled SPACX dataflow — across the four benchmark DNNs.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"spacx"
	"spacx/internal/sim"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	dataflows := []spacx.Dataflow{
		spacx.WeightStationary(),
		spacx.OutputStationaryEF(),
		spacx.SPACXDataflow(),
	}

	fmt.Fprintln(w, "Dataflow ablation on the SPACX architecture (normalized to WS)")
	fmt.Fprintf(w, "%-16s %-10s %12s %8s %12s %8s\n",
		"model", "dataflow", "exec(ms)", "t/WS", "energy(mJ)", "E/WS")
	for _, m := range spacx.Benchmarks() {
		var baseT, baseE float64
		for i, df := range dataflows {
			acc := sim.SPACXArchWithDataflow(df)
			res, err := spacx.Run(acc, m, spacx.WholeInference)
			if err != nil {
				return err
			}
			if i == 0 {
				baseT, baseE = res.ExecSec, res.TotalEnergy
			}
			fmt.Fprintf(w, "%-16s %-10s %12.4f %8.3f %12.3f %8.3f\n",
				m.Name, df.Name(), res.ExecSec*1e3, res.ExecSec/baseT,
				res.TotalEnergy*1e3, res.TotalEnergy/baseE)
		}
	}
	fmt.Fprintln(w, "\nPaper reference (Fig. 17): SPACX dataflow cuts execution time by ~68%")
	fmt.Fprintln(w, "vs WS and ~21% vs OS(e/f); energy by ~75% and ~27%.")
	return nil
}
