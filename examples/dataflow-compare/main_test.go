package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDataflowCompareRuns is the smoke test: the example must complete
// without error and print a block per benchmark model.
func TestDataflowCompareRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Dataflow ablation on the SPACX architecture",
		"ResNet-50",
		"VGG-16",
		"DenseNet-201",
		"EfficientNet-B7",
		"Paper reference (Fig. 17)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
