package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartRuns is the smoke test: the example must complete without
// error and print its headline lines.
func TestQuickstartRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"on SPACX:",
		"active PEs",
		"ResNet-50 inference:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
