// Quickstart: build the SPACX accelerator, run one convolution layer and a
// whole ResNet-50 inference, and print what the simulator reports.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"spacx"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	acc := spacx.SPACX()

	// A single layer: ResNet-50's first 3x3 bottleneck conv.
	layer := spacx.ResNet50().Layers[2]
	lr, err := spacx.RunLayer(acc, layer, spacx.LayerByLayer)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "layer %s on %s:\n", layer.Name, acc.Name())
	fmt.Fprintf(w, "  compute %.2f us, exposed communication %.2f us, total %.2f us\n",
		lr.ComputeSec*1e6, lr.CommSec*1e6, lr.ExecSec*1e6)
	fmt.Fprintf(w, "  energy %.1f uJ (network %.1f uJ, of which O/E %.1f uJ)\n",
		lr.TotalEnergy*1e6, lr.NetworkEnergy*1e6, lr.NetDynamic.OE*1e6)
	fmt.Fprintf(w, "  active PEs %d/%d, utilization %.1f%%\n",
		lr.Profile.ActivePEs, acc.Arch.TotalPEs(),
		100*lr.Profile.Utilization(acc.Arch))

	// A whole inference pass with global-buffer reuse between layers.
	res, err := spacx.Run(acc, spacx.ResNet50(), spacx.WholeInference)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nResNet-50 inference: %.3f ms, %.2f mJ\n",
		res.ExecSec*1e3, res.TotalEnergy*1e3)
	return nil
}
