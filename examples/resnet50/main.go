// resnet50 compares the three chiplet-based accelerators of the paper's
// evaluation on a complete ResNet-50 inference pass (the Figure 15 setup):
// Simba (electrical meshes), POPSTAR (photonic crossbar), and SPACX.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"spacx"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	model := spacx.ResNet50()
	accels := []spacx.Accelerator{spacx.Simba(), spacx.POPSTAR(), spacx.SPACX()}

	fmt.Fprintf(w, "%s, whole-inference (GB inter-layer reuse)\n\n", model.Name)
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s %8s %8s\n",
		"accel", "exec(ms)", "comp(ms)", "energy(mJ)", "net(mJ)", "t/Simba", "E/Simba")

	var baseT, baseE float64
	for i, acc := range accels {
		res, err := spacx.Run(acc, model, spacx.WholeInference)
		if err != nil {
			return err
		}
		if i == 0 {
			baseT, baseE = res.ExecSec, res.TotalEnergy
		}
		fmt.Fprintf(w, "%-8s %12.4f %12.4f %12.3f %12.3f %8.3f %8.3f\n",
			acc.Name(), res.ExecSec*1e3, res.ComputeSec*1e3,
			res.TotalEnergy*1e3, res.NetworkEnergy*1e3,
			res.ExecSec/baseT, res.TotalEnergy/baseE)
	}
	fmt.Fprintln(w, "\nPaper reference (Fig. 15): SPACX achieves ~78% execution-time and")
	fmt.Fprintln(w, "~75% energy reduction vs Simba; POPSTAR ~39% and ~28%.")
	return nil
}
