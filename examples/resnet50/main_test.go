package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestResnet50Runs is the smoke test: the example must complete without
// error, print a row per accelerator, and keep the Figure 15 ordering.
func TestResnet50Runs(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"ResNet-50, whole-inference",
		"Simba",
		"POPSTAR",
		"SPACX",
		"Paper reference (Fig. 15)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
