// Command spacx-sim runs one DNN model on one accelerator and prints the
// per-layer execution time and energy rows.
//
// Usage:
//
//	spacx-sim -model resnet50 -accel spacx -mode whole
//	spacx-sim -model vgg16 -accel simba -mode layer
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"spacx"
	"spacx/internal/dataflow"
	"spacx/internal/trace"
)

func main() {
	model := flag.String("model", "resnet50", "DNN model: resnet50, vgg16, densenet201, efficientnetb7, alexnet, mobilenetv2")
	accel := flag.String("accel", "spacx", "accelerator: spacx, spacx-noba, simba, popstar")
	mode := flag.String("mode", "whole", "residency mode: whole (GB reuse) or layer (DRAM per layer)")
	format := flag.String("format", "text", "output format: text or json")
	batch := flag.Int("batch", 1, "batch size (samples processed together)")
	tracePath := flag.String("trace", "", "write a chrome://tracing JSON schedule to this path")
	explain := flag.Bool("explain", false, "print the mapping decisions per layer instead of the summary rows")
	flag.Parse()

	if err := run(*model, *accel, *mode, *format, *batch, *tracePath, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "spacx-sim:", err)
		os.Exit(1)
	}
}

func run(modelName, accelName, modeName, format string, batch int, tracePath string, explain bool) error {
	m, err := spacx.ModelByName(modelName)
	if err != nil {
		return err
	}
	if batch > 1 {
		for i := range m.Layers {
			m.Layers[i] = m.Layers[i].WithBatch(batch)
		}
	}
	var acc spacx.Accelerator
	switch accelName {
	case "spacx":
		acc = spacx.SPACX()
	case "spacx-noba":
		acc = spacx.SPACXNoBA()
	case "simba":
		acc = spacx.Simba()
	case "popstar":
		acc = spacx.POPSTAR()
	default:
		return fmt.Errorf("unknown accelerator %q (spacx, spacx-noba, simba, popstar)", accelName)
	}
	var mode spacx.Mode
	switch modeName {
	case "whole":
		mode = spacx.WholeInference
	case "layer":
		mode = spacx.LayerByLayer
	default:
		return fmt.Errorf("unknown mode %q (whole, layer)", modeName)
	}

	res, err := spacx.Run(acc, m, mode)
	if err != nil {
		return err
	}
	if tracePath != "" {
		create := func(p string) (io.WriteCloser, error) { return os.Create(p) }
		if err := trace.ExportFile(create, tracePath, res); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", tracePath)
	}
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	if format != "text" {
		return fmt.Errorf("unknown format %q (text, json)", format)
	}
	if explain {
		for _, lr := range res.Layers {
			fmt.Println(dataflow.Explain(lr.Profile, acc.Arch))
		}
		return nil
	}
	fmt.Printf("%s on %s (%s)\n", m.Name, acc.Name(), mode)
	fmt.Printf("%-24s %4s %12s %12s %12s %12s\n",
		"layer", "rep", "comp(us)", "comm(us)", "exec(us)", "energy(uJ)")
	for _, lr := range res.Layers {
		fmt.Printf("%-24s %4d %12.2f %12.2f %12.2f %12.1f\n",
			lr.Layer.Name, lr.Layer.Repeat,
			lr.ComputeSec*1e6, lr.CommSec*1e6, lr.ExecSec*1e6, lr.TotalEnergy*1e6)
	}
	fmt.Printf("\ntotal: exec %.4f ms (compute %.4f ms), energy %.3f mJ (network %.3f mJ)\n",
		res.ExecSec*1e3, res.ComputeSec*1e3, res.TotalEnergy*1e3, res.NetworkEnergy*1e3)
	return nil
}
