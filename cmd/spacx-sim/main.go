// Command spacx-sim runs one DNN model on one accelerator and prints the
// per-layer execution time and energy rows.
//
// Usage:
//
//	spacx-sim -model resnet50 -accel spacx -mode whole
//	spacx-sim -model vgg16 -accel simba -mode layer
//	spacx-sim -model resnet50 -accel spacx -metrics /tmp/m.prom -v
//
// Observability: -metrics writes a metrics snapshot (Prometheus text format,
// or JSON when the path ends in .json) covering per-layer mapping timers,
// flow bytes by class/direction, overlap accounting, and a packet-latency
// histogram from a packet-level probe of the model's traffic; -cpuprofile
// and -memprofile write runtime/pprof profiles; -v logs progress to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"spacx"
	"spacx/internal/buildinfo"
	"spacx/internal/dataflow"
	"spacx/internal/dnn"
	"spacx/internal/exp"
	"spacx/internal/obs"
	"spacx/internal/sim"
	"spacx/internal/trace"
)

type options struct {
	model   string
	accel   string
	mode    string
	format  string
	batch   int
	trace   string
	explain bool

	metrics      string
	probePackets int
	cpuProfile   string
	memProfile   string
	verbose      bool
}

func main() {
	var o options
	flag.StringVar(&o.model, "model", "resnet50", "DNN model: resnet50, vgg16, densenet201, efficientnetb7, alexnet, mobilenetv2")
	flag.StringVar(&o.accel, "accel", "spacx", "accelerator: spacx, spacx-noba, simba, popstar")
	flag.StringVar(&o.mode, "mode", "whole", "residency mode: whole (GB reuse) or layer (DRAM per layer)")
	flag.StringVar(&o.format, "format", "text", "output format: text or json")
	flag.IntVar(&o.batch, "batch", 1, "batch size (samples processed together)")
	flag.StringVar(&o.trace, "trace", "", "write a chrome://tracing JSON schedule to this path")
	flag.BoolVar(&o.explain, "explain", false, "print the mapping decisions per layer instead of the summary rows")
	flag.StringVar(&o.metrics, "metrics", "", "write a metrics snapshot to this path (Prometheus text format; .json extension switches to JSON)")
	flag.IntVar(&o.probePackets, "probe-packets", 20000, "packets for the -metrics packet-level network probe")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this path")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this path on exit")
	flag.BoolVar(&o.verbose, "v", false, "log structured progress to stderr")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get().String())
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "spacx-sim:", err)
		os.Exit(1)
	}
}

// parseAccel resolves the -accel enum.
func parseAccel(name string) (spacx.Accelerator, error) {
	switch name {
	case "spacx":
		return spacx.SPACX(), nil
	case "spacx-noba":
		return spacx.SPACXNoBA(), nil
	case "simba":
		return spacx.Simba(), nil
	case "popstar":
		return spacx.POPSTAR(), nil
	default:
		return spacx.Accelerator{}, fmt.Errorf("unknown accelerator %q (spacx, spacx-noba, simba, popstar)", name)
	}
}

// parseMode resolves the -mode enum.
func parseMode(name string) (spacx.Mode, error) {
	switch name {
	case "whole":
		return spacx.WholeInference, nil
	case "layer":
		return spacx.LayerByLayer, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (whole, layer)", name)
	}
}

// validate fails fast on out-of-range or mutually inconsistent flags, before
// any simulation work starts.
func validate(o options) error {
	if o.format != "text" && o.format != "json" {
		return fmt.Errorf("unknown format %q (text, json)", o.format)
	}
	if o.explain && o.format == "json" {
		return fmt.Errorf("-explain is incompatible with -format json (mapping explanations are text-only; drop one)")
	}
	if o.batch < 1 {
		return fmt.Errorf("batch must be >= 1, got %d", o.batch)
	}
	if o.probePackets < 1 {
		return fmt.Errorf("probe-packets must be >= 1, got %d", o.probePackets)
	}
	return nil
}

func run(o options) error {
	// Validate every flag before simulating so a typo fails fast instead of
	// after a full run.
	if err := validate(o); err != nil {
		return err
	}
	m, err := spacx.ModelByName(o.model)
	if err != nil {
		return err
	}
	acc, err := parseAccel(o.accel)
	if err != nil {
		return err
	}
	mode, err := parseMode(o.mode)
	if err != nil {
		return err
	}

	stopProfiles, err := obs.StartProfiles(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "spacx-sim:", err)
		}
	}()

	rec := obs.Recorder(obs.Nop())
	var reg *obs.Registry
	if o.metrics != "" || o.verbose {
		reg = obs.NewRegistry(obs.NewLogger(os.Stderr, o.verbose))
		rec = reg
		exp.SetRecorder(rec)
	}

	// Batch the model in place (rather than via Request.Batch) so the
	// -metrics network probe below sees the same batched traffic.
	if o.batch > 1 {
		for i := range m.Layers {
			m.Layers[i] = m.Layers[i].WithBatch(o.batch)
		}
	}

	// SIGINT/SIGTERM cancels between layers: the run stops where it is and
	// the collected metrics still flush below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	runner := func(a sim.Accelerator, l dnn.Layer, md sim.Mode) (sim.LayerResult, error) {
		if err := ctx.Err(); err != nil {
			return sim.LayerResult{}, err
		}
		return sim.RunLayerObserved(a, l, md, rec)
	}
	res, simErr := sim.Request{Accel: acc, Model: m, Mode: mode}.RunObserved(rec, runner)
	interrupted := errors.Is(simErr, context.Canceled)
	if simErr != nil && !interrupted {
		return simErr
	}
	if o.trace != "" && simErr == nil {
		create := func(p string) (io.WriteCloser, error) { return os.Create(p) }
		if err := trace.ExportFile(create, o.trace, res); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", o.trace)
	}
	if o.metrics != "" {
		if simErr == nil {
			// Packet-level probe so the snapshot includes eventsim latency
			// and utilization data for this model's traffic.
			if _, err := exp.NetworkProbe(acc, m, o.probePackets, rec); err != nil {
				return err
			}
		}
		if err := reg.WriteFile(o.metrics); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", o.metrics)
	}
	if interrupted {
		return fmt.Errorf("interrupted: %w", simErr)
	}

	if o.format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	if o.explain {
		for _, lr := range res.Layers {
			fmt.Println(dataflow.Explain(lr.Profile, acc.Arch))
		}
		return nil
	}
	fmt.Printf("%s on %s (%s)\n", m.Name, acc.Name(), mode)
	fmt.Printf("%-24s %4s %12s %12s %12s %12s\n",
		"layer", "rep", "comp(us)", "comm(us)", "exec(us)", "energy(uJ)")
	for _, lr := range res.Layers {
		fmt.Printf("%-24s %4d %12.2f %12.2f %12.2f %12.1f\n",
			lr.Layer.Name, lr.Layer.Repeat,
			lr.ComputeSec*1e6, lr.CommSec*1e6, lr.ExecSec*1e6, lr.TotalEnergy*1e6)
	}
	fmt.Printf("\ntotal: exec %.4f ms (compute %.4f ms), energy %.3f mJ (network %.3f mJ)\n",
		res.ExecSec*1e3, res.ComputeSec*1e3, res.TotalEnergy*1e3, res.NetworkEnergy*1e3)
	return nil
}
