package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func opts(model, accel, mode, format string) options {
	return options{model: model, accel: accel, mode: mode, format: format, batch: 1, probePackets: 20000}
}

// silencing run's stdout keeps `go test` output readable.
func runQuiet(t *testing.T, o options) error {
	t.Helper()
	stdout := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = stdout
		null.Close()
	}()
	return run(o)
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(opts("nosuchmodel", "spacx", "whole", "text")); err == nil {
		t.Error("unknown model should fail")
	}
	if err := run(opts("resnet50", "nosuchaccel", "whole", "text")); err == nil {
		t.Error("unknown accelerator should fail")
	}
	if err := run(opts("resnet50", "spacx", "nosuchmode", "text")); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := run(opts("resnet50", "spacx", "whole", "nosuchformat")); err == nil {
		t.Error("unknown format should fail")
	}
	o := opts("resnet50", "spacx", "whole", "text")
	o.batch = 0
	if err := run(o); err == nil {
		t.Error("non-positive batch should fail")
	}
	o = opts("resnet50", "spacx", "whole", "text")
	o.trace = "/no/such/dir/trace.json"
	if err := runQuiet(t, o); err == nil {
		t.Error("unwritable trace path should fail")
	}
}

func TestValidateFlagConsistency(t *testing.T) {
	base := opts("resnet50", "spacx", "whole", "text")
	if err := validate(base); err != nil {
		t.Fatalf("baseline options should validate: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*options)
		want   string
	}{
		{"explain with json", func(o *options) { o.explain = true; o.format = "json" }, "-explain"},
		{"bad format", func(o *options) { o.format = "yaml" }, "format"},
		{"zero batch", func(o *options) { o.batch = 0 }, "batch"},
		{"negative batch", func(o *options) { o.batch = -4 }, "batch"},
		{"zero probe packets", func(o *options) { o.probePackets = 0 }, "probe-packets"},
		{"negative probe packets", func(o *options) { o.probePackets = -1 }, "probe-packets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mutate(&o)
			err := validate(o)
			if err == nil {
				t.Fatal("validate accepted inconsistent flags")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q should name %q", err, tc.want)
			}
		})
	}

	// -explain with the default text format stays valid.
	o := base
	o.explain = true
	if err := validate(o); err != nil {
		t.Errorf("-explain with text format should validate: %v", err)
	}
}

func TestBadFormatFailsBeforeSideEffects(t *testing.T) {
	// A -format typo must fail before the simulation runs and before any
	// trace/metrics file is written.
	dir := t.TempDir()
	o := opts("resnet50", "spacx", "whole", "nosuchformat")
	o.trace = filepath.Join(dir, "trace.json")
	o.metrics = filepath.Join(dir, "m.prom")
	if err := run(o); err == nil {
		t.Fatal("unknown format should fail")
	}
	for _, p := range []string{o.trace, o.metrics} {
		if _, err := os.Stat(p); err == nil {
			t.Errorf("%s was written despite the invalid -format", p)
		}
	}
}

func TestMetricsSnapshotWritten(t *testing.T) {
	dir := t.TempDir()
	promPath := filepath.Join(dir, "m.prom")
	o := opts("alexnet", "spacx", "whole", "text")
	o.metrics = promPath
	o.probePackets = 500
	if err := runQuiet(t, o); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, want := range []string{
		"# TYPE spacx_sim_flow_bytes_total counter",
		`spacx_sim_flow_bytes_total{class="weights",dir="gb_to_pe"}`,
		"# TYPE spacx_sim_layer_mapping_seconds histogram",
		"spacx_sim_layer_mapping_seconds_count",
		"# TYPE spacx_eventsim_packet_latency_seconds histogram",
		"spacx_eventsim_packet_latency_seconds_bucket",
		"# TYPE spacx_dataflow_broadcast_width histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}

	// The same data must be exportable as JSON.
	jsonPath := filepath.Join(dir, "m.json")
	o.metrics = jsonPath
	if err := runQuiet(t, o); err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(jb) {
		t.Fatalf("metrics JSON invalid: %.200s", jb)
	}
}

func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	o := opts("alexnet", "spacx", "whole", "text")
	o.cpuProfile = filepath.Join(dir, "cpu.prof")
	o.memProfile = filepath.Join(dir, "mem.prof")
	if err := runQuiet(t, o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.cpuProfile, o.memProfile} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}
