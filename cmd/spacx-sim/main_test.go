package main

import "testing"

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nosuchmodel", "spacx", "whole", "text", 1, "", false); err == nil {
		t.Error("unknown model should fail")
	}
	if err := run("resnet50", "nosuchaccel", "whole", "text", 1, "", false); err == nil {
		t.Error("unknown accelerator should fail")
	}
	if err := run("resnet50", "spacx", "nosuchmode", "text", 1, "", false); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := run("resnet50", "spacx", "whole", "nosuchformat", 1, "", false); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run("resnet50", "spacx", "whole", "text", 1, "/no/such/dir/trace.json", false); err == nil {
		t.Error("unwritable trace path should fail")
	}
}
