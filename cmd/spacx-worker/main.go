// Command spacx-worker is one member of a distributed sweep fleet: it
// registers with a spacx-serve coordinator (started with -fabric), pulls
// leased batches of sweep points over the /fabric/v1/ wire protocol,
// computes them through its own local simulation core — the same response
// LRU, layer memoization, and micro-batching engine the server uses, kept
// hot per shard by the coordinator's consistent-hash routing — and uploads
// the outcomes. Results are byte-identical to a local run by construction.
//
// Usage:
//
//	spacx-worker -coordinator http://127.0.0.1:8080
//	spacx-worker -coordinator http://127.0.0.1:8080 -name rack2 -j 8 -http 127.0.0.1:9090
//
// Lifecycle: runs until SIGINT/SIGTERM (in-flight batches are cancelled;
// finished points are still uploaded) or until the coordinator tells it to
// drain, then exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"spacx/internal/buildinfo"
	"spacx/internal/obs"
	"spacx/internal/obs/flightrec"
	"spacx/internal/obs/server"
	"spacx/internal/obs/tracing"
	"spacx/internal/serve"
	"spacx/internal/worker"
)

type options struct {
	coordinator string
	name        string
	jobs        int
	maxPoints   int
	poll        time.Duration
	retry       time.Duration
	cache       int
	httpAddr    string
	traceKeep   int
	flightRec   int
	flightDump  string
	verbose     bool
	version     bool
}

func main() {
	var o options
	flag.StringVar(&o.coordinator, "coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:8080 (required)")
	flag.StringVar(&o.name, "name", "", "operator-facing worker label (default: the hostname)")
	flag.IntVar(&o.jobs, "j", runtime.NumCPU(), "simulation workers per leased batch")
	flag.IntVar(&o.maxPoints, "max-points", 0, "most points requested per lease (0 = coordinator default)")
	flag.DurationVar(&o.poll, "poll", 5*time.Second, "lease long-poll window")
	flag.DurationVar(&o.retry, "retry", time.Second, "backoff after transport errors")
	flag.IntVar(&o.cache, "cache", 512, "response cache capacity (entries)")
	flag.StringVar(&o.httpAddr, "http", "", "also serve /metrics, /progress, and /traces on this address (off by default)")
	flag.IntVar(&o.traceKeep, "traces", 256, "recent compute traces retained for /traces")
	flag.IntVar(&o.flightRec, "flightrec", 0, "worker-side flight-recorder ring capacity (0 disables)")
	flag.StringVar(&o.flightDump, "flightrec-dump", "", "write the flight-recorder events to this JSONL file at exit")
	flag.BoolVar(&o.verbose, "v", false, "log structured progress to stderr")
	flag.BoolVar(&o.version, "version", false, "print build info and exit")
	flag.Parse()

	if o.version {
		fmt.Println(buildinfo.Get().String())
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "spacx-worker:", err)
		os.Exit(1)
	}
}

func validate(o options) error {
	if o.coordinator == "" {
		return fmt.Errorf("-coordinator is required")
	}
	if o.jobs < 1 {
		return fmt.Errorf("-j must be >= 1, got %d", o.jobs)
	}
	if o.maxPoints < 0 {
		return fmt.Errorf("-max-points must be >= 0, got %d", o.maxPoints)
	}
	if o.poll <= 0 {
		return fmt.Errorf("-poll must be > 0, got %v", o.poll)
	}
	if o.retry <= 0 {
		return fmt.Errorf("-retry must be > 0, got %v", o.retry)
	}
	if o.cache < 1 {
		return fmt.Errorf("-cache must be >= 1, got %d", o.cache)
	}
	if o.traceKeep < 1 {
		return fmt.Errorf("-traces must be >= 1, got %d", o.traceKeep)
	}
	if o.flightRec < 0 {
		return fmt.Errorf("-flightrec must be >= 0, got %d", o.flightRec)
	}
	return nil
}

func run(o options) error {
	if err := validate(o); err != nil {
		return err
	}
	if o.name == "" {
		o.name, _ = os.Hostname()
	}

	reg := obs.NewRegistry(obs.NewLogger(os.Stderr, o.verbose))
	traces := tracing.NewCollector(o.traceKeep, reg)
	var flight *flightrec.Recorder
	if o.flightRec > 0 {
		flight = flightrec.New(o.flightRec)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The local compute core: identical machinery to the server's, so a
	// leased point takes exactly the path (and produces exactly the bytes) it
	// would have locally.
	svc := serve.New(serve.Options{
		Workers:      o.jobs,
		MaxBatch:     o.jobs,
		CacheEntries: o.cache,
		Recorder:     reg,
		Traces:       traces,
	})
	svc.Start(ctx)
	defer svc.Close()

	w, err := worker.New(worker.Options{
		URL:       o.coordinator,
		Name:      o.name,
		Compute:   svc.ComputePoint,
		Jobs:      o.jobs,
		MaxPoints: o.maxPoints,
		Poll:      o.poll,
		Retry:     o.retry,
		Recorder:  reg,
		Traces:    traces,
		Metrics:   reg,
		Flight:    flight,
	})
	if err != nil {
		return err
	}

	var srv *server.Server
	if o.httpAddr != "" {
		srv, err = server.Start(o.httpAddr, server.Options{
			Registry: reg,
			Traces:   traces,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spacx-worker: observability on http://%s/metrics\n", srv.Addr())
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "spacx-worker: received %s, stopping\n", sig)
		cancel()
	}()

	fmt.Fprintf(os.Stderr, "spacx-worker: joining fleet at %s\n", o.coordinator)
	err = w.Run(ctx)
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	if srv != nil {
		_ = srv.DrainAndShutdown(0, 100*time.Millisecond)
	}
	if o.flightDump != "" && flight != nil {
		if f, ferr := os.Create(o.flightDump); ferr != nil {
			fmt.Fprintf(os.Stderr, "spacx-worker: flightrec dump: %v\n", ferr)
		} else {
			if werr := flight.WriteJSONL(f); werr != nil {
				fmt.Fprintf(os.Stderr, "spacx-worker: flightrec dump: %v\n", werr)
			}
			_ = f.Close()
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "spacx-worker: done")
	return nil
}
