// Command spacx-thermal runs the closed-loop thermal co-simulation: an RC
// thermal network of the SPACX package fed by the simulator's power model,
// coupled back into the photonic ring-tuning budget so sustained load
// raises die temperature, tuning power, and — once the heaters saturate and
// the loss margin goes negative — throttles throughput.
//
// Usage:
//
//	spacx-thermal -model alexnet -profile step -steps 180
//	spacx-thermal -model resnet50 -profile diurnal -seed 7 -steps 720 -dt 10
//	spacx-thermal -model alexnet -feedback=false -out replay.json
//	spacx-thermal -capacity
//
// Output: an aligned text summary on stdout; -out writes the full
// schema-versioned JSON time series (spacx.thermal-replay/v1, "-" for
// stdout). -capacity skips the replay and prints the steady-state
// capacity-under-drift table instead. Replays are deterministic: the
// offered-load profile is a pure function of (profile, seed, steps) and the
// RC integration is fixed-step.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"spacx/internal/buildinfo"
	"spacx/internal/dnn"
	"spacx/internal/exp"
	"spacx/internal/obs"
	"spacx/internal/report"
	"spacx/internal/sim"
)

type options struct {
	model    string
	mode     string
	profile  string
	seed     int64
	steps    int
	dt       float64
	feedback bool
	capacity bool
	out      string

	metrics string
	verbose bool
	version bool
}

func main() {
	var o options
	flag.StringVar(&o.model, "model", "alexnet", "DNN model to replay (resnet50, vgg16, densenet201, efficientnetb7, alexnet, mobilenetv2)")
	flag.StringVar(&o.mode, "mode", "layer", "data-residency mode: whole or layer")
	flag.StringVar(&o.profile, "profile", "step", "offered-load profile: step, diurnal, or bursty")
	flag.Int64Var(&o.seed, "seed", 1, "profile PRNG seed; same seed replays identically")
	flag.IntVar(&o.steps, "steps", 180, "replay length in integration steps")
	flag.Float64Var(&o.dt, "dt", 1, "seconds each step integrates")
	flag.BoolVar(&o.feedback, "feedback", true, "couple temperature back into tuning power and throttling (false = static baseline)")
	flag.BoolVar(&o.capacity, "capacity", false, "print the steady-state capacity-under-drift table instead of a replay")
	flag.StringVar(&o.out, "out", "", "write the full JSON time series to this path (\"-\" for stdout)")
	flag.StringVar(&o.metrics, "metrics", "", "write a metrics snapshot to this path (Prometheus text format; .json extension switches to JSON)")
	flag.BoolVar(&o.verbose, "v", false, "log structured progress to stderr")
	flag.BoolVar(&o.version, "version", false, "print build info and exit")
	flag.Parse()

	if o.version {
		fmt.Println(buildinfo.Get().String())
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "spacx-thermal:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	// Validate every flag before simulating so a typo fails fast.
	model, err := dnn.ByName(o.model)
	if err != nil {
		return err
	}
	var mode sim.Mode
	switch o.mode {
	case "whole":
		mode = sim.WholeInference
	case "layer":
		mode = sim.LayerByLayer
	default:
		return fmt.Errorf("unknown mode %q (whole, layer)", o.mode)
	}
	if !o.capacity {
		if _, err := exp.OfferedLoad(o.profile, o.seed, 1); err != nil {
			return err
		}
		if o.steps < 1 {
			return fmt.Errorf("-steps must be >= 1, got %d", o.steps)
		}
		if o.dt <= 0 {
			return fmt.Errorf("-dt must be > 0, got %g", o.dt)
		}
	}

	var reg *obs.Registry
	if o.metrics != "" || o.verbose {
		reg = obs.NewRegistry(obs.NewLogger(os.Stderr, o.verbose))
		exp.SetRecorder(reg)
		defer exp.SetRecorder(nil)
	}

	if o.capacity {
		rows, err := exp.ThermalCapacity(model, mode, nil)
		if err != nil {
			return err
		}
		report.ThermalCapacity(os.Stdout, rows)
		return writeArtifacts(o, reg, rows)
	}

	rep, err := exp.ThermalReplay(exp.ThermalReplayConfig{
		Model:    model,
		Mode:     mode,
		Profile:  o.profile,
		Seed:     o.seed,
		Steps:    o.steps,
		StepSec:  o.dt,
		Feedback: o.feedback,
	})
	if err != nil {
		return err
	}
	report.Thermal(os.Stdout, rep)
	return writeArtifacts(o, reg, rep)
}

// writeArtifacts flushes the -out JSON and -metrics snapshot.
func writeArtifacts(o options, reg *obs.Registry, v any) error {
	if o.out != "" {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if o.out == "-" {
			_, err = os.Stdout.Write(b)
		} else {
			err = os.WriteFile(o.out, b, 0o644)
		}
		if err != nil {
			return err
		}
		if o.out != "-" {
			fmt.Fprintf(os.Stderr, "report written to %s\n", o.out)
		}
	}
	if o.metrics != "" {
		if err := reg.WriteFile(o.metrics); err != nil {
			return err
		}
		if o.metrics != "-" {
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", o.metrics)
		}
	}
	if o.verbose {
		reg.LogSummary()
	}
	return nil
}
