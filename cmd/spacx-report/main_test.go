package main

import (
	"os"
	"testing"
)

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("", 100, "nosuchformat"); err == nil {
		t.Error("unknown format should fail")
	}
	if err := runCSV(os.Stdout, "", 100); err == nil {
		t.Error("csv without -only should fail")
	}
	if err := runCSV(os.Stdout, "table1", 100); err == nil {
		t.Error("csv for a text-only artifact should fail")
	}
}
