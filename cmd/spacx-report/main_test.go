package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(options{only: "", packets: 100, format: "nosuchformat", jobs: 1}); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run(options{only: "nosuchartifact", packets: 100, format: "text", jobs: 1}); err == nil {
		t.Error("unknown artifact should fail")
	}
	if err := run(options{only: "fig16", packets: 0, format: "text", jobs: 1}); err == nil {
		t.Error("non-positive packet count should fail")
	}
	if err := run(options{only: "fig19", packets: 100, format: "text", jobs: 0}); err == nil {
		t.Error("non-positive -j should fail")
	}
	if err := runCSV(os.Stdout, "", 100); err == nil {
		t.Error("csv without -only should fail")
	}
	if err := runCSV(os.Stdout, "table1", 100); err == nil {
		t.Error("csv for a text-only artifact should fail")
	}
}

func TestBadArtifactFailsBeforeSideEffects(t *testing.T) {
	dir := t.TempDir()
	o := options{only: "nosuchartifact", packets: 100, format: "text", jobs: 1,
		metrics: filepath.Join(dir, "m.prom")}
	if err := run(o); err == nil {
		t.Fatal("unknown artifact should fail")
	}
	if _, err := os.Stat(o.metrics); err == nil {
		t.Error("metrics file was written despite the invalid -only")
	}
}

func TestFig19MetricsSnapshot(t *testing.T) {
	dir := t.TempDir()
	o := options{only: "fig19", packets: 100, format: "text", jobs: 1,
		metrics: filepath.Join(dir, "m.prom")}

	stdout := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = stdout
		null.Close()
	}()

	if err := run(o); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(o.metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `spacx_exp_points_total{sweep="power-point"}`) {
		t.Error("metrics snapshot missing the power sweep per-point counter")
	}
}
