package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spacx/internal/obs/ledger"
)

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(options{only: "", packets: 100, format: "nosuchformat", jobs: 1}); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run(options{only: "nosuchartifact", packets: 100, format: "text", jobs: 1}); err == nil {
		t.Error("unknown artifact should fail")
	}
	if err := run(options{only: "fig16", packets: 0, format: "text", jobs: 1}); err == nil {
		t.Error("non-positive packet count should fail")
	}
	if err := run(options{only: "fig19", packets: 100, format: "text", jobs: 0}); err == nil {
		t.Error("non-positive -j should fail")
	}
	if err := runCSV(os.Stdout, "", 100); err == nil {
		t.Error("csv without -only should fail")
	}
	if err := runCSV(os.Stdout, "table1", 100); err == nil {
		t.Error("csv for a text-only artifact should fail")
	}
}

func TestBadArtifactFailsBeforeSideEffects(t *testing.T) {
	dir := t.TempDir()
	o := options{only: "nosuchartifact", packets: 100, format: "text", jobs: 1,
		metrics: filepath.Join(dir, "m.prom")}
	if err := run(o); err == nil {
		t.Fatal("unknown artifact should fail")
	}
	if _, err := os.Stat(o.metrics); err == nil {
		t.Error("metrics file was written despite the invalid -only")
	}
}

func TestFig19MetricsSnapshot(t *testing.T) {
	dir := t.TempDir()
	o := options{only: "fig19", packets: 100, format: "text", jobs: 1,
		metrics: filepath.Join(dir, "m.prom")}

	stdout := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = stdout
		null.Close()
	}()

	if err := run(o); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(o.metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `spacx_exp_points_total{sweep="power-point"}`) {
		t.Error("metrics snapshot missing the power sweep per-point counter")
	}
}

func TestObservabilityFlagValidation(t *testing.T) {
	base := options{only: "table1", packets: 100, format: "text", jobs: 1}

	o := base
	o.httpLinger = -time.Second
	if err := run(o); err == nil {
		t.Error("negative -http-linger should fail")
	}
	o = base
	o.regress = -1
	if err := run(o); err == nil {
		t.Error("negative -regress should fail")
	}
	o = base
	o.regress = 1.5
	if err := run(o); err == nil {
		t.Error("-regress without -ledger should fail")
	}
}

func TestLedgerRecordsRun(t *testing.T) {
	dir := t.TempDir()
	o := options{only: "table1", packets: 100, format: "text", jobs: 2,
		ledgerPath: filepath.Join(dir, "runs.jsonl")}

	stdout := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = stdout
		null.Close()
	}()

	// Two runs: the second also exercises -regress against the first.
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o.regress = 100 // generous: nothing should be flagged, only compared
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	recs, err := ledger.Read(o.ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("ledger records = %d, want 2", len(recs))
	}
	for i, rec := range recs {
		if rec.Schema != ledger.SchemaVersion || rec.Cmd != "spacx-report" ||
			rec.Target != "table1" || rec.Jobs != 2 {
			t.Errorf("record %d header wrong: %+v", i, rec)
		}
		if rec.WallSec <= 0 || rec.PeakGoroutines <= 0 || rec.PeakHeapBytes == 0 {
			t.Errorf("record %d missing runtime stats: %+v", i, rec)
		}
		found := false
		for _, d := range rec.Drivers {
			if d.Name == "table1" && d.Points == 1 && d.WallSec > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("record %d has no table1 driver stat: %+v", i, rec.Drivers)
		}
		if len(rec.Histograms) == 0 {
			t.Errorf("record %d has no histogram summaries", i)
		}
		for _, h := range rec.Histograms {
			if h.P50 < h.Min || h.P99 > h.Max || h.P50 > h.P95 || h.P95 > h.P99 {
				t.Errorf("record %d quantiles inconsistent: %+v", i, h)
			}
		}
	}
}

func TestMetricsDashWritesStdout(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout := os.Stdout
	os.Stdout = w
	runErr := run(options{only: "table1", packets: 100, format: "text", jobs: 1, metrics: "-"})
	w.Close()
	os.Stdout = stdout
	out, readErr := io.ReadAll(r)
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !strings.Contains(string(out), `spacx_exp_points_total{sweep="table1"} 1`) {
		t.Errorf("-metrics - must write the exposition to stdout, got:\n%s", out)
	}
}

func TestHTTPServerRunsAndDrains(t *testing.T) {
	stdout := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = stdout
		null.Close()
	}()

	o := options{only: "table1", packets: 100, format: "text", jobs: 1,
		httpAddr: "127.0.0.1:0", httpLinger: 10 * time.Millisecond}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}
