// Command spacx-report regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's experiment index) as text.
//
// Usage:
//
//	spacx-report                # everything
//	spacx-report -only fig15    # one artifact
//	spacx-report -only fig16 -v -metrics /tmp/report.prom
//	spacx-report -j 1           # force sequential evaluation
//
// Parallelism: -j N sets the worker count for the experiment engine's fan-out
// over independent simulation points (default: all CPUs). Results are
// bit-for-bit identical at any worker count.
//
// Observability: -v logs a structured progress line per experiment point to
// stderr; -metrics writes the accumulated counters and histograms (Prometheus
// text format, JSON when the path ends in .json, or stdout when the path is
// "-"); -cpuprofile and -memprofile write runtime/pprof profiles.
//
// Live observability: -http addr serves /metrics, /progress, /runs,
// /healthz, and /debug/pprof/ while the run executes (the server lingers
// -http-linger after the run for a final scrape); -progress prints a
// one-line progress ticker to stderr; -ledger path appends one JSON record
// per run (wall times, per-driver point counts, peak goroutines/heap,
// histogram quantiles) and -regress ratio fails the run comparison against
// the previous ledger record to stderr when a driver slowed past the ratio.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"spacx/internal/buildinfo"
	"spacx/internal/exp"
	"spacx/internal/exp/engine"
	"spacx/internal/obs"
	"spacx/internal/obs/ledger"
	"spacx/internal/obs/server"
	"spacx/internal/report"
)

type options struct {
	only    string
	packets int
	format  string
	jobs    int

	metrics    string
	cpuProfile string
	memProfile string
	verbose    bool

	httpAddr   string
	httpLinger time.Duration
	ledgerPath string
	ledgerKeep int
	progress   bool
	regress    float64
	version    bool
}

// artifacts is the set of -only values, in render order.
var artifacts = []string{
	"table1", "table2", "table34",
	"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
	"fig21", "fig22",
	"ablation", "tradeoff", "adaptive", "batch", "engines", "area",
}

func main() {
	var o options
	flag.StringVar(&o.only, "only", "", "render one artifact: "+strings.Join(artifacts, ", "))
	flag.IntVar(&o.packets, "fig16-packets", 20000, "packets per fig16 event-simulation run")
	flag.StringVar(&o.format, "format", "text", "output format: text or csv (csv requires -only)")
	flag.IntVar(&o.jobs, "j", runtime.NumCPU(), "number of parallel simulation workers")
	flag.StringVar(&o.metrics, "metrics", "", "write a metrics snapshot to this path (Prometheus text format; .json extension switches to JSON)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this path")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this path on exit")
	flag.BoolVar(&o.verbose, "v", false, "log structured per-point progress to stderr")
	flag.StringVar(&o.httpAddr, "http", "", "serve live observability endpoints on this address (e.g. 127.0.0.1:9090)")
	flag.DurationVar(&o.httpLinger, "http-linger", 2*time.Second, "keep the -http server up this long after the run for a final scrape")
	flag.StringVar(&o.ledgerPath, "ledger", "", "append a JSON run record to this file (e.g. runs.jsonl)")
	flag.IntVar(&o.ledgerKeep, "ledger-keep", 0, "on startup, prune the -ledger file to its newest N records, dropping schema-mismatched lines (0 disables)")
	flag.BoolVar(&o.progress, "progress", false, "print a live progress line to stderr every second")
	flag.Float64Var(&o.regress, "regress", 0, "report drivers slower than this ratio vs the previous -ledger record (0 disables)")
	flag.BoolVar(&o.version, "version", false, "print build info and exit")
	flag.Parse()
	o.only = strings.ToLower(o.only)

	if o.version {
		fmt.Println(buildinfo.Get().String())
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "spacx-report:", err)
		os.Exit(1)
	}
}

func validOnly(only string) bool {
	if only == "" {
		return true
	}
	for _, a := range artifacts {
		if only == a {
			return true
		}
	}
	return false
}

func run(o options) error {
	// Validate every enum flag before running any experiment so a typo
	// fails fast instead of after minutes of simulation.
	if o.format != "text" && o.format != "csv" {
		return fmt.Errorf("unknown format %q (text, csv)", o.format)
	}
	if !validOnly(o.only) {
		return fmt.Errorf("unknown artifact %q (%s)", o.only, strings.Join(artifacts, ", "))
	}
	if o.packets < 1 {
		return fmt.Errorf("fig16-packets must be >= 1, got %d", o.packets)
	}
	if o.jobs < 1 {
		return fmt.Errorf("-j must be >= 1, got %d", o.jobs)
	}
	if o.httpLinger < 0 {
		return fmt.Errorf("-http-linger must be >= 0, got %v", o.httpLinger)
	}
	if o.regress < 0 {
		return fmt.Errorf("-regress must be >= 0, got %v", o.regress)
	}
	if o.regress > 0 && o.ledgerPath == "" {
		return fmt.Errorf("-regress needs -ledger to compare against")
	}
	if o.ledgerKeep < 0 {
		return fmt.Errorf("-ledger-keep must be >= 0, got %d", o.ledgerKeep)
	}
	if o.ledgerKeep > 0 && o.ledgerPath == "" {
		return fmt.Errorf("-ledger-keep needs -ledger to prune")
	}
	if o.ledgerKeep > 0 {
		kept, dropped, err := ledger.Prune(o.ledgerPath, ledger.SchemaVersion, o.ledgerKeep)
		if err != nil {
			return fmt.Errorf("prune ledger: %w", err)
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "spacx-report: ledger pruned to %d records (%d dropped)\n", kept, dropped)
		}
	}
	exp.SetParallelism(o.jobs)

	// SIGINT/SIGTERM cancels the sweep: in-flight points are abandoned at
	// the engine's next claim, and whatever was collected still flushes to
	// -metrics and -ledger below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	exp.SetContext(ctx)
	defer exp.SetContext(nil)

	stopProfiles, err := obs.StartProfiles(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "spacx-report:", err)
		}
	}()

	var reg *obs.Registry
	if o.metrics != "" || o.verbose || o.httpAddr != "" || o.ledgerPath != "" {
		reg = obs.NewRegistry(obs.NewLogger(os.Stderr, o.verbose))
		exp.SetRecorder(reg)
		defer exp.SetRecorder(nil)
	}
	var prog *engine.Progress
	if o.httpAddr != "" || o.ledgerPath != "" || o.progress {
		prog = engine.NewProgress()
		exp.SetProgress(prog)
		defer exp.SetProgress(nil)
	}

	var srv *server.Server
	if o.httpAddr != "" {
		srv, err = server.Start(o.httpAddr, server.Options{
			Registry: reg,
			Progress: prog,
			Runs: func() ([]ledger.Record, error) {
				if o.ledgerPath == "" {
					return nil, nil
				}
				return ledger.Read(o.ledgerPath)
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: serving http://%s/ (metrics, progress, runs, pprof)\n", srv.Addr())
	}
	var sampler *ledger.Sampler
	if o.ledgerPath != "" {
		sampler = ledger.StartSampler(0)
	}
	stopTicker := func() {}
	if o.progress {
		stopTicker = prog.StartTicker(os.Stderr, time.Second)
	}

	var renderErr error
	if o.format == "csv" {
		renderErr = runCSV(os.Stdout, o.only, o.packets)
	} else {
		renderErr = runText(os.Stdout, o.only, o.packets)
	}
	stopTicker()
	interrupted := errors.Is(renderErr, context.Canceled)
	if renderErr != nil && !interrupted {
		return renderErr
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "spacx-report: interrupted; flushing metrics and ledger")
	}

	if o.verbose {
		reg.LogSummary()
	}
	if o.metrics != "" {
		if err := reg.WriteFile(o.metrics); err != nil {
			return err
		}
		if o.metrics != "-" {
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", o.metrics)
		}
	}
	if o.ledgerPath != "" {
		rec := ledger.New("spacx-report", o.only, o.jobs)
		rec.FillProgress(prog.Status())
		rec.FillSnapshot(reg.Snapshot())
		rec.PeakGoroutines, rec.PeakHeapBytes = sampler.Stop()
		if o.regress > 0 {
			prev, ok, err := ledger.Last(o.ledgerPath)
			if err != nil {
				return err
			}
			if ok {
				fmt.Fprint(os.Stderr, ledger.Compare(prev, rec, o.regress).String())
			}
		}
		if err := ledger.Append(o.ledgerPath, rec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "run recorded to %s\n", o.ledgerPath)
	}
	if srv != nil {
		// Keep serving the completed /progress, /runs, and final metrics
		// until a scraper collects them or the linger window closes.
		if err := srv.DrainAndShutdown(o.httpLinger, 200*time.Millisecond); err != nil {
			fmt.Fprintln(os.Stderr, "spacx-report: observability server:", err)
		}
	}
	if interrupted {
		return renderErr
	}
	return nil
}

func runText(w *os.File, only string, packets int) error {
	want := func(name string) bool { return only == "" || only == name }
	sep := func() { fmt.Fprintln(w, strings.Repeat("-", 88)) }

	if want("table1") {
		rows, err := exp.Table1()
		if err != nil {
			return err
		}
		report.Table1(w, rows)
		sep()
	}
	if want("table2") {
		report.Table2(w, exp.Table2())
		sep()
	}
	if want("table34") {
		rows, err := exp.Table3And4()
		if err != nil {
			return err
		}
		report.Table3And4(w, rows)
		sep()
	}
	if want("fig13") || want("fig14") {
		rows, err := exp.Fig13And14()
		if err != nil {
			return err
		}
		report.PerLayer(w, rows)
		sep()
	}
	if want("fig15") {
		rows, err := exp.Fig15()
		if err != nil {
			return err
		}
		report.Overall(w, "Figure 15 — whole-inference execution time and energy (normalized to Simba)", rows)
		sep()
	}
	if want("fig16") {
		rows, err := exp.Fig16(packets)
		if err != nil {
			return err
		}
		report.Fig16(w, rows)
		sep()
	}
	if want("fig17") {
		rows, err := exp.Fig17()
		if err != nil {
			return err
		}
		report.Overall(w, "Figure 17 — dataflows on the SPACX architecture (normalized to WS)", rows)
		sep()
	}
	if want("fig18") {
		rows, err := exp.Fig18()
		if err != nil {
			return err
		}
		report.Overall(w, "Figure 18 — bandwidth allocation on/off (normalized to Simba)", rows)
		sep()
	}
	if want("fig19") {
		pts, err := exp.Fig19()
		if err != nil {
			return err
		}
		report.PowerSurface(w, "Figure 19 — SPACX network power, moderate parameters", pts)
		sep()
	}
	if want("fig20") {
		pts, err := exp.Fig20()
		if err != nil {
			return err
		}
		report.PowerSurface(w, "Figure 20 — SPACX network power, aggressive parameters", pts)
		sep()
	}
	if want("fig21") {
		a, err := exp.Fig21a()
		if err != nil {
			return err
		}
		b, err := exp.Fig21bBreakdown()
		if err != nil {
			return err
		}
		report.Fig21(w, a, b)
		sep()
	}
	if want("fig22") {
		rows, err := exp.Fig22()
		if err != nil {
			return err
		}
		report.Fig22(w, rows)
		sep()
	}
	if want("ablation") {
		rows, err := exp.AblationBroadcast()
		if err != nil {
			return err
		}
		report.Ablation(w, rows)
		sep()
	}
	if want("tradeoff") {
		rows, err := exp.GranularityTradeoff()
		if err != nil {
			return err
		}
		report.GranularityTradeoff(w, rows)
		sep()
	}
	if want("adaptive") {
		rows, err := exp.AdaptiveGranularity()
		if err != nil {
			return err
		}
		report.Adaptive(w, rows)
		sep()
	}
	if want("batch") {
		rows, err := exp.BatchScaling()
		if err != nil {
			return err
		}
		report.BatchScaling(w, rows)
		sep()
	}
	if want("engines") {
		rows, err := exp.EngineAgreement()
		if err != nil {
			return err
		}
		report.Engines(w, rows)
		sep()
	}
	if want("area") {
		r, err := exp.Area()
		if err != nil {
			return err
		}
		report.Area(w, r)
		sep()
	}
	return nil
}

// runCSV emits a single artifact as CSV for downstream plotting.
func runCSV(w *os.File, only string, packets int) error {
	switch only {
	case "fig13", "fig14":
		rows, err := exp.Fig13And14()
		if err != nil {
			return err
		}
		return report.PerLayerCSV(w, rows)
	case "fig15":
		rows, err := exp.Fig15()
		if err != nil {
			return err
		}
		return report.OverallCSV(w, rows)
	case "fig16":
		rows, err := exp.Fig16(packets)
		if err != nil {
			return err
		}
		return report.Fig16CSV(w, rows)
	case "fig17":
		rows, err := exp.Fig17()
		if err != nil {
			return err
		}
		return report.OverallCSV(w, rows)
	case "fig18":
		rows, err := exp.Fig18()
		if err != nil {
			return err
		}
		return report.OverallCSV(w, rows)
	case "fig19":
		pts, err := exp.Fig19()
		if err != nil {
			return err
		}
		return report.PowerSurfaceCSV(w, pts)
	case "fig20":
		pts, err := exp.Fig20()
		if err != nil {
			return err
		}
		return report.PowerSurfaceCSV(w, pts)
	case "fig22":
		rows, err := exp.Fig22()
		if err != nil {
			return err
		}
		return report.Fig22CSV(w, rows)
	default:
		return fmt.Errorf("csv format supports fig13..fig20, fig22; got %q", only)
	}
}
