package main

import "testing"

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nosuchsweep", "moderate", 32, 32); err == nil {
		t.Error("unknown sweep should fail")
	}
	if err := run("power", "nosuchparams", 32, 32); err == nil {
		t.Error("unknown params should fail")
	}
	if err := run("power", "moderate", -1, 32); err == nil {
		t.Error("negative machine size should fail the sweep")
	}
}
