package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spacx/internal/obs/ledger"
)

func opts(sweep, params string, m, n int) options {
	return options{sweep: sweep, params: params, m: m, n: n, jobs: 1, batch: "auto"}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(opts("nosuchsweep", "moderate", 32, 32)); err == nil {
		t.Error("unknown sweep should fail")
	}
	if err := run(opts("power", "nosuchparams", 32, 32)); err == nil {
		t.Error("unknown params should fail")
	}
	if err := run(opts("power", "moderate", -1, 32)); err == nil {
		t.Error("negative machine size should fail the sweep")
	}
	bad := opts("power", "moderate", 32, 32)
	bad.jobs = 0
	if err := run(bad); err == nil {
		t.Error("non-positive -j should fail")
	}
	bad = opts("power", "moderate", 32, 32)
	bad.batch = "sometimes"
	if err := run(bad); err == nil {
		t.Error("unknown -batch mode should fail")
	}
}

func TestBadSweepFailsBeforeSideEffects(t *testing.T) {
	dir := t.TempDir()
	o := opts("nosuchsweep", "moderate", 32, 32)
	o.metrics = filepath.Join(dir, "m.prom")
	if err := run(o); err == nil {
		t.Fatal("unknown sweep should fail")
	}
	if _, err := os.Stat(o.metrics); err == nil {
		t.Error("metrics file was written despite the invalid -sweep")
	}
}

func TestPowerSweepWritesMetrics(t *testing.T) {
	dir := t.TempDir()
	o := opts("power", "moderate", 8, 8)
	o.metrics = filepath.Join(dir, "m.prom")

	// Silence the report table.
	stdout := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = stdout
		null.Close()
	}()

	if err := run(o); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(o.metrics)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, want := range []string{
		`spacx_exp_points_total{sweep="power-point"}`,
		"# TYPE spacx_exp_point_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
}

func TestObservabilityFlagValidation(t *testing.T) {
	o := opts("power", "moderate", 8, 8)
	o.httpLinger = -time.Second
	if err := run(o); err == nil {
		t.Error("negative -http-linger should fail")
	}
	o = opts("power", "moderate", 8, 8)
	o.regress = 1.5
	if err := run(o); err == nil {
		t.Error("-regress without -ledger should fail")
	}
}

func TestLedgerRecordsSweep(t *testing.T) {
	dir := t.TempDir()
	o := opts("power", "moderate", 8, 8)
	o.ledgerPath = filepath.Join(dir, "runs.jsonl")
	o.httpAddr = "127.0.0.1:0"
	o.httpLinger = 10 * time.Millisecond

	stdout := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = stdout
		null.Close()
	}()

	if err := run(o); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := ledger.Last(o.ledgerPath)
	if err != nil || !ok {
		t.Fatalf("no ledger record: ok=%v err=%v", ok, err)
	}
	if rec.Cmd != "spacx-sweep" || rec.Target != "power" || rec.WallSec <= 0 {
		t.Errorf("record header wrong: %+v", rec)
	}
	found := false
	for _, d := range rec.Drivers {
		if d.Name == "power" && d.Points > 0 && d.WallSec > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no power driver stat with non-zero wall time: %+v", rec.Drivers)
	}
}
