package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func opts(sweep, params string, m, n int) options {
	return options{sweep: sweep, params: params, m: m, n: n, jobs: 1}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(opts("nosuchsweep", "moderate", 32, 32)); err == nil {
		t.Error("unknown sweep should fail")
	}
	if err := run(opts("power", "nosuchparams", 32, 32)); err == nil {
		t.Error("unknown params should fail")
	}
	if err := run(opts("power", "moderate", -1, 32)); err == nil {
		t.Error("negative machine size should fail the sweep")
	}
	bad := opts("power", "moderate", 32, 32)
	bad.jobs = 0
	if err := run(bad); err == nil {
		t.Error("non-positive -j should fail")
	}
}

func TestBadSweepFailsBeforeSideEffects(t *testing.T) {
	dir := t.TempDir()
	o := opts("nosuchsweep", "moderate", 32, 32)
	o.metrics = filepath.Join(dir, "m.prom")
	if err := run(o); err == nil {
		t.Fatal("unknown sweep should fail")
	}
	if _, err := os.Stat(o.metrics); err == nil {
		t.Error("metrics file was written despite the invalid -sweep")
	}
}

func TestPowerSweepWritesMetrics(t *testing.T) {
	dir := t.TempDir()
	o := opts("power", "moderate", 8, 8)
	o.metrics = filepath.Join(dir, "m.prom")

	// Silence the report table.
	stdout := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = stdout
		null.Close()
	}()

	if err := run(o); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(o.metrics)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, want := range []string{
		`spacx_exp_points_total{sweep="power-point"}`,
		"# TYPE spacx_exp_point_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
}
