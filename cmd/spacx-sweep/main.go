// Command spacx-sweep runs the design-space sweeps: the broadcast
// granularity power surfaces of Figures 19/20 and the scalability study of
// Figure 22.
//
// Usage:
//
//	spacx-sweep -sweep power -params moderate
//	spacx-sweep -sweep power -params aggressive -m 64 -n 64
//	spacx-sweep -sweep scale -v -metrics /tmp/sweep.prom
//	spacx-sweep -sweep scale -j 1
//
// Parallelism: -j N sets the worker count for the experiment engine's fan-out
// over independent sweep points (default: all CPUs). Results are bit-for-bit
// identical at any worker count.
//
// Observability: -v logs a structured progress line per sweep point to
// stderr; -metrics writes per-point counters and duration histograms
// (Prometheus text format, or JSON when the path ends in .json);
// -cpuprofile/-memprofile write runtime/pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"spacx"
	"spacx/internal/exp"
	"spacx/internal/obs"
	"spacx/internal/report"
)

type options struct {
	sweep  string
	params string
	m, n   int
	jobs   int

	metrics    string
	cpuProfile string
	memProfile string
	verbose    bool
}

func main() {
	var o options
	flag.StringVar(&o.sweep, "sweep", "power", "sweep kind: power (Figs 19/20) or scale (Fig 22)")
	flag.StringVar(&o.params, "params", "moderate", "photonic parameters: moderate or aggressive")
	flag.IntVar(&o.m, "m", 32, "chiplet count for the power sweep")
	flag.IntVar(&o.n, "n", 32, "PEs per chiplet for the power sweep")
	flag.IntVar(&o.jobs, "j", runtime.NumCPU(), "number of parallel simulation workers")
	flag.StringVar(&o.metrics, "metrics", "", "write a metrics snapshot to this path (Prometheus text format; .json extension switches to JSON)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this path")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this path on exit")
	flag.BoolVar(&o.verbose, "v", false, "log structured per-point progress to stderr")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "spacx-sweep:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	// Validate every enum flag before sweeping so a typo fails fast.
	if o.sweep != "power" && o.sweep != "scale" {
		return fmt.Errorf("unknown sweep %q (power, scale)", o.sweep)
	}
	var p spacx.PhotonicParams
	switch o.params {
	case "moderate":
		p = spacx.ModerateParams()
	case "aggressive":
		p = spacx.AggressiveParams()
	default:
		return fmt.Errorf("unknown params %q (moderate, aggressive)", o.params)
	}
	if o.sweep == "power" && (o.m < 1 || o.n < 1) {
		return fmt.Errorf("machine size must be positive, got M=%d N=%d", o.m, o.n)
	}
	if o.jobs < 1 {
		return fmt.Errorf("-j must be >= 1, got %d", o.jobs)
	}
	exp.SetParallelism(o.jobs)

	stopProfiles, err := obs.StartProfiles(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "spacx-sweep:", err)
		}
	}()

	var reg *obs.Registry
	if o.metrics != "" || o.verbose {
		reg = obs.NewRegistry(obs.NewLogger(os.Stderr, o.verbose))
		exp.SetRecorder(reg)
		defer exp.SetRecorder(nil)
	}

	switch o.sweep {
	case "power":
		pts, err := exp.PowerSweep(o.m, o.n, p)
		if err != nil {
			return err
		}
		report.PowerSurface(os.Stdout,
			fmt.Sprintf("SPACX network power surface, M=%d N=%d, %s parameters", o.m, o.n, p.Name), pts)
	case "scale":
		rows, err := exp.Fig22()
		if err != nil {
			return err
		}
		report.Fig22(os.Stdout, rows)
	}

	if o.metrics != "" {
		if err := reg.WriteFile(o.metrics); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", o.metrics)
	}
	return nil
}
