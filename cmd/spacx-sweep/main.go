// Command spacx-sweep runs the design-space sweeps: the broadcast
// granularity power surfaces of Figures 19/20 and the scalability study of
// Figure 22.
//
// Usage:
//
//	spacx-sweep -sweep power -params moderate
//	spacx-sweep -sweep power -params aggressive -m 64 -n 64
//	spacx-sweep -sweep scale -v -metrics /tmp/sweep.prom
//	spacx-sweep -sweep scale -j 1
//
// Parallelism: -j N sets the worker count for the experiment engine's fan-out
// over independent sweep points (default: all CPUs). Results are bit-for-bit
// identical at any worker count.
//
// Batched evaluation: -batch {auto,on,off} selects whether the sweep grids
// route their layer evaluations through the structure-of-arrays batch kernel
// (sim.RunBatch). The default, auto, batches only when the grid's points
// share mapping cohorts; results are bit-for-bit identical in every mode.
//
// Observability: -v logs a structured progress line per sweep point to
// stderr; -metrics writes per-point counters and duration histograms
// (Prometheus text format, JSON when the path ends in .json, or stdout when
// the path is "-"); -cpuprofile/-memprofile write runtime/pprof profiles.
//
// Live observability: -http addr serves /metrics, /progress, /runs,
// /healthz, and /debug/pprof/ during the sweep (lingering -http-linger for a
// final scrape); -progress prints a stderr progress ticker; -ledger path
// appends one JSON run record per invocation and -regress ratio compares it
// against the previous record.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"spacx"
	"spacx/internal/buildinfo"
	"spacx/internal/exp"
	"spacx/internal/exp/engine"
	"spacx/internal/obs"
	"spacx/internal/obs/ledger"
	"spacx/internal/obs/server"
	"spacx/internal/report"
)

type options struct {
	sweep  string
	params string
	m, n   int
	jobs   int
	batch  string

	metrics    string
	cpuProfile string
	memProfile string
	verbose    bool

	httpAddr   string
	httpLinger time.Duration
	ledgerPath string
	ledgerKeep int
	progress   bool
	regress    float64
	version    bool
}

func main() {
	var o options
	flag.StringVar(&o.sweep, "sweep", "power", "sweep kind: power (Figs 19/20) or scale (Fig 22)")
	flag.StringVar(&o.params, "params", "moderate", "photonic parameters: moderate or aggressive")
	flag.IntVar(&o.m, "m", 32, "chiplet count for the power sweep")
	flag.IntVar(&o.n, "n", 32, "PEs per chiplet for the power sweep")
	flag.IntVar(&o.jobs, "j", runtime.NumCPU(), "number of parallel simulation workers")
	flag.StringVar(&o.batch, "batch", "auto", "batched layer kernel: auto (batch when the sweep shares mapping cohorts), on, or off")
	flag.StringVar(&o.metrics, "metrics", "", "write a metrics snapshot to this path (Prometheus text format; .json extension switches to JSON)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this path")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this path on exit")
	flag.BoolVar(&o.verbose, "v", false, "log structured per-point progress to stderr")
	flag.StringVar(&o.httpAddr, "http", "", "serve live observability endpoints on this address (e.g. 127.0.0.1:9090)")
	flag.DurationVar(&o.httpLinger, "http-linger", 2*time.Second, "keep the -http server up this long after the run for a final scrape")
	flag.StringVar(&o.ledgerPath, "ledger", "", "append a JSON run record to this file (e.g. runs.jsonl)")
	flag.IntVar(&o.ledgerKeep, "ledger-keep", 0, "on startup, prune the -ledger file to its newest N records, dropping schema-mismatched lines (0 disables)")
	flag.BoolVar(&o.progress, "progress", false, "print a live progress line to stderr every second")
	flag.Float64Var(&o.regress, "regress", 0, "report drivers slower than this ratio vs the previous -ledger record (0 disables)")
	flag.BoolVar(&o.version, "version", false, "print build info and exit")
	flag.Parse()

	if o.version {
		fmt.Println(buildinfo.Get().String())
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "spacx-sweep:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	// Validate every enum flag before sweeping so a typo fails fast.
	if o.sweep != "power" && o.sweep != "scale" {
		return fmt.Errorf("unknown sweep %q (power, scale)", o.sweep)
	}
	var p spacx.PhotonicParams
	switch o.params {
	case "moderate":
		p = spacx.ModerateParams()
	case "aggressive":
		p = spacx.AggressiveParams()
	default:
		return fmt.Errorf("unknown params %q (moderate, aggressive)", o.params)
	}
	if o.sweep == "power" && (o.m < 1 || o.n < 1) {
		return fmt.Errorf("machine size must be positive, got M=%d N=%d", o.m, o.n)
	}
	if o.jobs < 1 {
		return fmt.Errorf("-j must be >= 1, got %d", o.jobs)
	}
	switch o.batch {
	case "auto", "on", "off":
	default:
		return fmt.Errorf("unknown batch mode %q (auto, on, off)", o.batch)
	}
	if o.httpLinger < 0 {
		return fmt.Errorf("-http-linger must be >= 0, got %v", o.httpLinger)
	}
	if o.regress < 0 {
		return fmt.Errorf("-regress must be >= 0, got %v", o.regress)
	}
	if o.regress > 0 && o.ledgerPath == "" {
		return fmt.Errorf("-regress needs -ledger to compare against")
	}
	if o.ledgerKeep < 0 {
		return fmt.Errorf("-ledger-keep must be >= 0, got %d", o.ledgerKeep)
	}
	if o.ledgerKeep > 0 && o.ledgerPath == "" {
		return fmt.Errorf("-ledger-keep needs -ledger to prune")
	}
	if o.ledgerKeep > 0 {
		kept, dropped, err := ledger.Prune(o.ledgerPath, ledger.SchemaVersion, o.ledgerKeep)
		if err != nil {
			return fmt.Errorf("prune ledger: %w", err)
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "spacx-sweep: ledger pruned to %d records (%d dropped)\n", kept, dropped)
		}
	}
	exp.SetParallelism(o.jobs)
	if err := exp.SetBatchMode(o.batch); err != nil {
		return err
	}

	// SIGINT/SIGTERM cancels the sweep: in-flight points are abandoned at
	// the engine's next claim, and whatever was collected still flushes to
	// -metrics and -ledger below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	exp.SetContext(ctx)
	defer exp.SetContext(nil)

	stopProfiles, err := obs.StartProfiles(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "spacx-sweep:", err)
		}
	}()

	var reg *obs.Registry
	if o.metrics != "" || o.verbose || o.httpAddr != "" || o.ledgerPath != "" {
		reg = obs.NewRegistry(obs.NewLogger(os.Stderr, o.verbose))
		exp.SetRecorder(reg)
		defer exp.SetRecorder(nil)
	}
	var prog *engine.Progress
	if o.httpAddr != "" || o.ledgerPath != "" || o.progress {
		prog = engine.NewProgress()
		exp.SetProgress(prog)
		defer exp.SetProgress(nil)
	}

	var srv *server.Server
	if o.httpAddr != "" {
		srv, err = server.Start(o.httpAddr, server.Options{
			Registry: reg,
			Progress: prog,
			Runs: func() ([]ledger.Record, error) {
				if o.ledgerPath == "" {
					return nil, nil
				}
				return ledger.Read(o.ledgerPath)
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: serving http://%s/ (metrics, progress, runs, pprof)\n", srv.Addr())
	}
	var sampler *ledger.Sampler
	if o.ledgerPath != "" {
		sampler = ledger.StartSampler(0)
	}
	stopTicker := func() {}
	if o.progress {
		stopTicker = prog.StartTicker(os.Stderr, time.Second)
	}

	var sweepErr error
	switch o.sweep {
	case "power":
		var pts []spacx.PowerPoint
		pts, sweepErr = exp.PowerSweep(o.m, o.n, p)
		if sweepErr == nil {
			report.PowerSurface(os.Stdout,
				fmt.Sprintf("SPACX network power surface, M=%d N=%d, %s parameters", o.m, o.n, p.Name), pts)
		}
	case "scale":
		var rows []exp.Fig22Row
		rows, sweepErr = exp.Fig22()
		if sweepErr == nil {
			report.Fig22(os.Stdout, rows)
		}
	}
	stopTicker()
	interrupted := errors.Is(sweepErr, context.Canceled)
	if sweepErr != nil && !interrupted {
		return sweepErr
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "spacx-sweep: interrupted; flushing metrics and ledger")
	}

	if o.verbose {
		reg.LogSummary()
	}
	if o.metrics != "" {
		if err := reg.WriteFile(o.metrics); err != nil {
			return err
		}
		if o.metrics != "-" {
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", o.metrics)
		}
	}
	if o.ledgerPath != "" {
		rec := ledger.New("spacx-sweep", o.sweep, o.jobs)
		rec.FillProgress(prog.Status())
		rec.FillSnapshot(reg.Snapshot())
		rec.PeakGoroutines, rec.PeakHeapBytes = sampler.Stop()
		if o.regress > 0 {
			prev, ok, err := ledger.Last(o.ledgerPath)
			if err != nil {
				return err
			}
			if ok {
				fmt.Fprint(os.Stderr, ledger.Compare(prev, rec, o.regress).String())
			}
		}
		if err := ledger.Append(o.ledgerPath, rec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "run recorded to %s\n", o.ledgerPath)
	}
	if srv != nil {
		// Keep serving the completed /progress, /runs, and final metrics
		// until a scraper collects them or the linger window closes.
		if err := srv.DrainAndShutdown(o.httpLinger, 200*time.Millisecond); err != nil {
			fmt.Fprintln(os.Stderr, "spacx-sweep: observability server:", err)
		}
	}
	if interrupted {
		return sweepErr
	}
	return nil
}
