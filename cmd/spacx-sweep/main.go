// Command spacx-sweep runs the design-space sweeps: the broadcast
// granularity power surfaces of Figures 19/20 and the scalability study of
// Figure 22.
//
// Usage:
//
//	spacx-sweep -sweep power -params moderate
//	spacx-sweep -sweep power -params aggressive -m 64 -n 64
//	spacx-sweep -sweep scale
package main

import (
	"flag"
	"fmt"
	"os"

	"spacx"
	"spacx/internal/exp"
	"spacx/internal/report"
)

func main() {
	sweep := flag.String("sweep", "power", "sweep kind: power (Figs 19/20) or scale (Fig 22)")
	params := flag.String("params", "moderate", "photonic parameters: moderate or aggressive")
	m := flag.Int("m", 32, "chiplet count for the power sweep")
	n := flag.Int("n", 32, "PEs per chiplet for the power sweep")
	flag.Parse()

	if err := run(*sweep, *params, *m, *n); err != nil {
		fmt.Fprintln(os.Stderr, "spacx-sweep:", err)
		os.Exit(1)
	}
}

func run(sweep, params string, m, n int) error {
	switch sweep {
	case "power":
		var p spacx.PhotonicParams
		switch params {
		case "moderate":
			p = spacx.ModerateParams()
		case "aggressive":
			p = spacx.AggressiveParams()
		default:
			return fmt.Errorf("unknown params %q (moderate, aggressive)", params)
		}
		pts, err := spacx.PowerSurface(m, n, p)
		if err != nil {
			return err
		}
		report.PowerSurface(os.Stdout,
			fmt.Sprintf("SPACX network power surface, M=%d N=%d, %s parameters", m, n, p.Name), pts)
		return nil
	case "scale":
		rows, err := exp.Fig22()
		if err != nil {
			return err
		}
		report.Fig22(os.Stdout, rows)
		return nil
	default:
		return fmt.Errorf("unknown sweep %q (power, scale)", sweep)
	}
}
