package main

import (
	"testing"
	"time"
)

func validOpts() options {
	return options{
		httpAddr:   "127.0.0.1:0",
		jobs:       2,
		queue:      8,
		maxBatch:   4,
		cache:      16,
		maxReqBat:  256,
		sweepCap:   16,
		retryAfter: time.Second,
		linger:     time.Second,
		jobsKeep:   64,
		maxJobs:    8,
		traceKeep:  256,
	}
}

func TestValidateOptions(t *testing.T) {
	if err := validate(validOpts()); err != nil {
		t.Fatalf("baseline options should validate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"zero jobs", func(o *options) { o.jobs = 0 }},
		{"zero queue", func(o *options) { o.queue = 0 }},
		{"zero max batch", func(o *options) { o.maxBatch = 0 }},
		{"negative window", func(o *options) { o.window = -time.Millisecond }},
		{"zero cache", func(o *options) { o.cache = 0 }},
		{"zero request batch", func(o *options) { o.maxReqBat = 0 }},
		{"zero sweep points", func(o *options) { o.sweepCap = 0 }},
		{"zero retry after", func(o *options) { o.retryAfter = 0 }},
		{"negative linger", func(o *options) { o.linger = -time.Second }},
		{"zero jobs keep", func(o *options) { o.jobsKeep = 0 }},
		{"zero max jobs", func(o *options) { o.maxJobs = 0 }},
		{"zero trace keep", func(o *options) { o.traceKeep = 0 }},
		{"fabric zero lease ttl", func(o *options) { o.fabricOn = true; o.leasePoints = 8 }},
		{"fabric zero lease points", func(o *options) { o.fabricOn = true; o.leaseTTL = time.Second }},
		{"fabric negative worker ttl", func(o *options) {
			o.fabricOn = true
			o.leaseTTL = time.Second
			o.leasePoints = 8
			o.workerTTL = -time.Second
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOpts()
			tc.mutate(&o)
			if err := validate(o); err == nil {
				t.Fatal("validate accepted an out-of-range option")
			}
		})
	}
}
