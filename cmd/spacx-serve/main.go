// Command spacx-serve runs the simulator as a long-lived service: a
// stdlib-only HTTP API answering accelerator × model × mode × batch
// what-if queries from a shared simulation core with request coalescing,
// fingerprint-keyed result caching, micro-batching, and bounded-queue
// backpressure.
//
// Usage:
//
//	spacx-serve -http 127.0.0.1:8080
//	spacx-serve -http 127.0.0.1:8080 -j 8 -queue 128 -max-batch 32 -batch-window 2ms
//
// Endpoints (see README.md "Serving" and "Jobs & Tracing"):
//
//	POST   /v1/simulate         one simulation query
//	POST   /v1/sweep            a small parameter grid, synchronous
//	POST   /v1/thermal          closed-loop thermal replay of a traffic profile
//	POST   /v1/jobs             submit a sweep as an async job (202 + id)
//	GET    /v1/jobs             job list, newest first (survives restarts)
//	GET    /v1/jobs/{id}        job status + result once done
//	DELETE /v1/jobs/{id}        cancel a running job
//	GET    /v1/jobs/{id}/events SSE progress stream (points done, rate, ETA)
//	GET    /v1/models           servable model catalog
//	GET    /v1/accelerators     servable accelerator catalog
//	POST   /fabric/v1/...       worker-fleet wire protocol (with -fabric)
//	GET    /fabric/v1/status    fleet + in-flight sweep snapshot
//	GET    /fleet               per-worker liveness, throughput, version skew
//	GET    /fleet/events        flight-recorder dump (fabric lifecycle events)
//	GET    /metrics             service + simulator + federated worker metrics
//	GET    /traces, /traces/{id} request/job span trees (X-Spacx-Trace ids)
//	GET    /version             build info
//	GET    /readyz              readiness (503 once draining)
//
// Lifecycle: SIGINT/SIGTERM flips /readyz to 503, stops admitting new
// simulations (503 + Retry-After), drains every queued job to completion,
// lingers -http-linger for a final metrics scrape, then exits. A second
// signal abandons unstarted work and exits promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"spacx/internal/buildinfo"
	"spacx/internal/exp"
	"spacx/internal/exp/engine"
	"spacx/internal/obs"
	"spacx/internal/obs/flightrec"
	"spacx/internal/obs/server"
	"spacx/internal/obs/tracing"
	"spacx/internal/serve"
	"spacx/internal/serve/fabric"
	"spacx/internal/serve/jobs"
)

type options struct {
	httpAddr   string
	jobs       int
	queue      int
	maxBatch   int
	window     time.Duration
	cache      int
	maxReqBat  int
	sweepCap   int
	retryAfter time.Duration
	linger     time.Duration
	jobsLedger string
	jobsKeep   int
	maxJobs    int
	traceKeep  int

	fabricOn    bool
	leaseTTL    time.Duration
	leasePoints int
	workerTTL   time.Duration
	flightRec   int
	flightDump  string

	verbose bool
	version bool
}

func main() {
	var o options
	flag.StringVar(&o.httpAddr, "http", "127.0.0.1:8080", "serve the API and observability endpoints on this address")
	flag.IntVar(&o.jobs, "j", runtime.NumCPU(), "simulation workers per micro-batch")
	flag.IntVar(&o.queue, "queue", 64, "admission queue depth; beyond it requests get 429")
	flag.IntVar(&o.maxBatch, "max-batch", 16, "most queries coalesced into one engine batch")
	flag.DurationVar(&o.window, "batch-window", 0, "how long to wait for stragglers before dispatching a batch (0 = immediate)")
	flag.IntVar(&o.cache, "cache", 512, "response cache capacity (entries)")
	flag.IntVar(&o.maxReqBat, "max-request-batch", 256, "largest accepted per-request batch size")
	flag.IntVar(&o.sweepCap, "sweep-points", 64, "largest accepted /v1/sweep grid")
	flag.DurationVar(&o.retryAfter, "retry-after", time.Second, "Retry-After hint on 429/503 responses")
	flag.DurationVar(&o.linger, "http-linger", 2*time.Second, "keep serving this long after drain for a final metrics scrape")
	flag.StringVar(&o.jobsLedger, "jobs-ledger", "", "persist async job state to this JSONL file (survives restarts)")
	flag.IntVar(&o.jobsKeep, "jobs-keep", 64, "terminal jobs retained in memory and in the jobs ledger")
	flag.IntVar(&o.maxJobs, "max-jobs", 8, "concurrently live async jobs; beyond it submissions get 429")
	flag.IntVar(&o.traceKeep, "traces", 256, "recent request/job traces retained for /traces")
	flag.BoolVar(&o.fabricOn, "fabric", false, "coordinate a spacx-worker fleet on /fabric/v1/; async sweeps fan out when workers are attached")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", 15*time.Second, "how long a worker may hold a leased point batch before it is re-leased")
	flag.IntVar(&o.leasePoints, "lease-points", 8, "most sweep points handed out per lease")
	flag.DurationVar(&o.workerTTL, "worker-ttl", 0, "expire workers silent this long (0 = 4 x heartbeat)")
	flag.IntVar(&o.flightRec, "flightrec", 1024, "fabric flight-recorder ring capacity (events retained for /fleet/events; 0 disables)")
	flag.StringVar(&o.flightDump, "flightrec-dump", "", "write the flight-recorder events to this JSONL file at exit")
	flag.BoolVar(&o.verbose, "v", false, "log structured request progress to stderr")
	flag.BoolVar(&o.version, "version", false, "print build info and exit")
	flag.Parse()

	if o.version {
		fmt.Println(buildinfo.Get().String())
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "spacx-serve:", err)
		os.Exit(1)
	}
}

func validate(o options) error {
	if o.jobs < 1 {
		return fmt.Errorf("-j must be >= 1, got %d", o.jobs)
	}
	if o.queue < 1 {
		return fmt.Errorf("-queue must be >= 1, got %d", o.queue)
	}
	if o.maxBatch < 1 {
		return fmt.Errorf("-max-batch must be >= 1, got %d", o.maxBatch)
	}
	if o.window < 0 {
		return fmt.Errorf("-batch-window must be >= 0, got %v", o.window)
	}
	if o.cache < 1 {
		return fmt.Errorf("-cache must be >= 1, got %d", o.cache)
	}
	if o.maxReqBat < 1 {
		return fmt.Errorf("-max-request-batch must be >= 1, got %d", o.maxReqBat)
	}
	if o.sweepCap < 1 {
		return fmt.Errorf("-sweep-points must be >= 1, got %d", o.sweepCap)
	}
	if o.retryAfter <= 0 {
		return fmt.Errorf("-retry-after must be > 0, got %v", o.retryAfter)
	}
	if o.linger < 0 {
		return fmt.Errorf("-http-linger must be >= 0, got %v", o.linger)
	}
	if o.jobsKeep < 1 {
		return fmt.Errorf("-jobs-keep must be >= 1, got %d", o.jobsKeep)
	}
	if o.maxJobs < 1 {
		return fmt.Errorf("-max-jobs must be >= 1, got %d", o.maxJobs)
	}
	if o.traceKeep < 1 {
		return fmt.Errorf("-traces must be >= 1, got %d", o.traceKeep)
	}
	if o.fabricOn {
		if o.leaseTTL <= 0 {
			return fmt.Errorf("-lease-ttl must be > 0, got %v", o.leaseTTL)
		}
		if o.leasePoints < 1 {
			return fmt.Errorf("-lease-points must be >= 1, got %d", o.leasePoints)
		}
		if o.workerTTL < 0 {
			return fmt.Errorf("-worker-ttl must be >= 0, got %v", o.workerTTL)
		}
		if o.flightRec < 0 {
			return fmt.Errorf("-flightrec must be >= 0, got %d", o.flightRec)
		}
	}
	return nil
}

func run(o options) error {
	if err := validate(o); err != nil {
		return err
	}

	reg := obs.NewRegistry(obs.NewLogger(os.Stderr, o.verbose))
	prog := engine.NewProgress()
	traces := tracing.NewCollector(o.traceKeep, reg)
	// /v1/thermal runs through the experiment drivers, whose spacx_thermal_*
	// gauges land on the package recorder; point it at the registry so they
	// show up on /metrics alongside the serve metrics.
	exp.SetRecorder(reg)

	// hardCtx is the second-signal abort: cancelling it abandons engine
	// batch items that have not started.
	hardCtx, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()

	// The coordinator (when enabled) exists before the service so sweeps can
	// fan out from the first request; with no workers attached the service
	// quietly runs sweeps locally.
	var coord *fabric.Coordinator
	var flight *flightrec.Recorder
	if o.fabricOn {
		if o.flightRec > 0 {
			flight = flightrec.New(o.flightRec)
		}
		coord = fabric.New(fabric.Options{
			LeaseTTL:    o.leaseTTL,
			LeasePoints: o.leasePoints,
			WorkerTTL:   o.workerTTL,
			Recorder:    reg,
			Traces:      traces,
			Flight:      flight,
		})
	}

	svc := serve.New(serve.Options{
		Workers:         o.jobs,
		QueueDepth:      o.queue,
		MaxBatch:        o.maxBatch,
		BatchWindow:     o.window,
		CacheEntries:    o.cache,
		MaxRequestBatch: o.maxReqBat,
		MaxSweepPoints:  o.sweepCap,
		RetryAfter:      o.retryAfter,
		Recorder:        reg,
		Progress:        prog,
		Traces:          traces,
		Fabric:          coord,
		Flight:          flight,
	})
	svc.Start(hardCtx)

	mgr, err := jobs.NewManager(jobs.Options{
		Prepare: func(body []byte) (jobs.SweepRun, error) {
			sr, err := svc.PrepareSweep(body)
			if err != nil {
				return nil, err
			}
			return sr, nil
		},
		Path:     o.jobsLedger,
		Keep:     o.jobsKeep,
		MaxLive:  o.maxJobs,
		Recorder: reg,
		Traces:   traces,
	})
	if err != nil {
		return fmt.Errorf("job ledger: %w", err)
	}

	srvOpts := server.Options{
		Registry: reg,
		Progress: prog,
		Traces:   traces,
	}
	if coord != nil {
		srvOpts.Federate = coord.FleetMetrics
	}
	srvOpts.Mount = func(mux *http.ServeMux) {
		svc.Routes(mux)
		mgr.Routes(mux, svc.Instrument)
		if coord != nil {
			coord.Routes(mux, fabric.Instrumenter(svc.Instrument))
		}
	}
	srv, err := server.Start(o.httpAddr, srvOpts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spacx-serve: serving http://%s/v1/ (metrics on /metrics)\n", srv.Addr())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "spacx-serve: received %s, draining (again to abort)\n", sig)

	// Graceful half: stop advertising readiness, refuse new simulations,
	// finish what is queued. A second signal during the drain hard-cancels.
	// Jobs close first — cancelling them (recorded as failed-by-shutdown in
	// the ledger) stops them feeding the admission queue the drain empties.
	srv.SetReady(false)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "spacx-serve: received %s, abandoning queued work\n", s)
		hardCancel()
	}()
	// The coordinator closes between the jobs and the service: jobs first so
	// in-flight distributed sweeps settle (or are recorded cancelled), then
	// the fleet is told to drain, then local admission shuts.
	mgr.Close()
	if coord != nil {
		coord.Close()
	}
	svc.Close()

	if o.flightDump != "" && flight != nil {
		if f, err := os.Create(o.flightDump); err != nil {
			fmt.Fprintf(os.Stderr, "spacx-serve: flightrec dump: %v\n", err)
		} else {
			if err := flight.WriteJSONL(f); err != nil {
				fmt.Fprintf(os.Stderr, "spacx-serve: flightrec dump: %v\n", err)
			}
			_ = f.Close()
		}
	}

	// Keep /metrics up for a final scrape, then exit.
	return srv.DrainAndShutdown(o.linger, 200*time.Millisecond)
}
