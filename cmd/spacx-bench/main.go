// Command spacx-bench turns `go test -bench -benchmem` output (read from
// stdin) into a schema-versioned BENCH_<area>.json record, or compares the
// fresh output against a committed baseline.
//
// Record a baseline (the `make bench-json` flow):
//
//	go test -run=NONE -bench=. -benchmem ./internal/eventsim/ |
//	    spacx-bench -area eventsim -out BENCH_eventsim.json
//
// Check a run against the committed baseline (the CI flow):
//
//	go test -run=NONE -bench=. -benchmem ./internal/eventsim/ |
//	    spacx-bench -area eventsim -compare BENCH_eventsim.json
//
// Comparison warns (exit 0) on ns/op beyond -ns-threshold — wall time is a
// property of the host — and fails (exit 1) on allocs/op regressions, which
// are machine-independent.
package main

import (
	"flag"
	"fmt"
	"os"

	"spacx/internal/bench"
	"spacx/internal/buildinfo"
)

func main() {
	area := flag.String("area", "", "record area, names the BENCH_<area>.json file (required)")
	out := flag.String("out", "", "write the parsed record to this path")
	compare := flag.String("compare", "", "compare the parsed record against this committed baseline")
	nsThreshold := flag.Float64("ns-threshold", 2.0,
		"warn when ns/op exceeds baseline by this factor (<=0 disables)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get().String())
		return
	}
	if err := run(*area, *out, *compare, *nsThreshold); err != nil {
		fmt.Fprintln(os.Stderr, "spacx-bench:", err)
		os.Exit(1)
	}
}

func run(area, out, compare string, nsThreshold float64) error {
	if area == "" {
		return fmt.Errorf("-area is required")
	}
	if (out == "") == (compare == "") {
		return fmt.Errorf("exactly one of -out or -compare is required")
	}
	rec, err := bench.Parse(os.Stdin, area)
	if err != nil {
		return err
	}
	if out != "" {
		if err := rec.WriteFile(out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spacx-bench: wrote %d benchmarks to %s\n", len(rec.Benchmarks), out)
		return nil
	}
	baseline, err := bench.ReadFile(compare)
	if err != nil {
		return err
	}
	if baseline.Area != area {
		return fmt.Errorf("baseline %s is area %q, comparing area %q", compare, baseline.Area, area)
	}
	rep := bench.Compare(baseline, rec, nsThreshold)
	fmt.Fprint(os.Stderr, rep.String())
	if rep.Failed {
		return fmt.Errorf("allocs/op regressed against %s", compare)
	}
	if rep.Warned {
		fmt.Fprintln(os.Stderr, "spacx-bench: time regression (warn-only; timings are machine-dependent)")
	}
	return nil
}
