// Package spacx is a simulation library reproducing "SPACX: Silicon
// Photonics-based Scalable Chiplet Accelerator for DNN Inference"
// (Li, Louri, Karanth — HPCA 2022).
//
// It models, from first principles, the three chiplet-based DNN
// accelerators of the paper's evaluation — SPACX (hierarchical photonic
// network + broadcast-enabled output-stationary dataflow), Simba
// (all-electrical meshes + weight-stationary dataflow), and POPSTAR
// (photonic package crossbar + electrical chiplet meshes) — together with
// the photonic device/power substrate (insertion-loss budgets, laser and
// transceiver power), the DNN benchmark models, an analytical performance
// and energy simulator, and a packet-level network simulator.
//
// Quick start:
//
//	acc := spacx.SPACX()
//	res, err := spacx.Run(acc, spacx.ResNet50(), spacx.WholeInference)
//	if err != nil { ... }
//	fmt.Println(res.ExecSec, res.TotalEnergy)
//
// The internal/exp package (exercised by the benchmarks in bench_test.go
// and the cmd/spacx-report binary) regenerates every table and figure of
// the paper; see DESIGN.md and EXPERIMENTS.md.
package spacx

import (
	"spacx/internal/dataflow"
	"spacx/internal/dnn"
	"spacx/internal/network/spacxnet"
	"spacx/internal/photonic"
	"spacx/internal/sim"
)

// Re-exported core types. The aliases keep one canonical definition in the
// internal packages while giving library users a single import.
type (
	// Accelerator pairs an architecture with its dataflow.
	Accelerator = sim.Accelerator
	// Mode selects data residency (LayerByLayer or WholeInference).
	Mode = sim.Mode
	// LayerResult is one layer's simulation outcome.
	LayerResult = sim.LayerResult
	// ModelResult aggregates a full DNN.
	ModelResult = sim.ModelResult
	// Model is a DNN model: an ordered list of deduplicated layers.
	Model = dnn.Model
	// Layer holds the nested-loop dimensions of one conv/FC layer.
	Layer = dnn.Layer
	// Arch describes an accelerator architecture.
	Arch = dataflow.Arch
	// Dataflow maps layers onto architectures.
	Dataflow = dataflow.Dataflow
	// PhotonicParams is a Table III/IV photonic parameter set.
	PhotonicParams = photonic.Params
	// NetworkConfig is a SPACX photonic network configuration.
	NetworkConfig = spacxnet.Config
	// PowerPoint is one sample of the granularity power sweep.
	PowerPoint = spacxnet.PowerPoint
)

// Residency modes (Section VII-D).
const (
	// LayerByLayer executes each layer with all data initially in DRAM.
	LayerByLayer = sim.LayerByLayer
	// WholeInference exploits inter-layer data reuse in the global buffer.
	WholeInference = sim.WholeInference
)

// Benchmark models of the evaluation (Section VII-D), plus AlexNet and
// MobileNetV2 for library users.
var (
	ResNet50       = dnn.ResNet50
	VGG16          = dnn.VGG16
	DenseNet201    = dnn.DenseNet201
	EfficientNetB7 = dnn.EfficientNetB7
	AlexNet        = dnn.AlexNet
	MobileNetV2    = dnn.MobileNetV2
	Benchmarks     = dnn.Benchmarks
	ModelByName    = dnn.ByName
)

// Accelerator presets of Section VII-C.
var (
	// SPACX is the proposed accelerator (M=32, N=32, e/f=8, k=16,
	// moderate photonics, bandwidth allocation on).
	SPACX = sim.SPACXAccel
	// SPACXNoBA disables the flexible bandwidth-allocation scheme.
	SPACXNoBA = sim.SPACXAccelNoBA
	// SPACXCustom builds SPACX at arbitrary scale/granularity/parameters.
	SPACXCustom = sim.SPACXAccelCustom
	// Simba is the all-electrical baseline.
	Simba = sim.SimbaAccel
	// POPSTAR is the photonic-crossbar baseline.
	POPSTAR = sim.POPSTARAccel
)

// Photonic parameter sets (Tables III and IV).
var (
	ModerateParams   = photonic.Moderate
	AggressiveParams = photonic.Aggressive
)

// Dataflows (Figure 17's comparison set).
var (
	// SPACXDataflow is the broadcast-enabled output-stationary dataflow.
	SPACXDataflow = func() Dataflow { return dataflow.SPACX{BandwidthAllocation: true} }
	// WeightStationary is Simba's WS dataflow.
	WeightStationary = func() Dataflow { return dataflow.WS{} }
	// OutputStationaryEF is ShiDianNao's OS(e/f) dataflow.
	OutputStationaryEF = func() Dataflow { return dataflow.OSEF{} }
)

// Run simulates a full model on an accelerator.
func Run(acc Accelerator, m Model, mode Mode) (ModelResult, error) {
	return sim.Run(acc, m, mode)
}

// RunLayer simulates a single layer instance.
func RunLayer(acc Accelerator, l Layer, mode Mode) (LayerResult, error) {
	return sim.RunLayer(acc, l, mode)
}

// PowerSurface sweeps the broadcast granularities (Figures 19/20).
func PowerSurface(m, n int, p PhotonicParams) ([]PowerPoint, error) {
	return spacxnet.PowerSurface(m, n, p)
}

// NewNetworkConfig builds a validated SPACX photonic network configuration.
func NewNetworkConfig(m, n, gef, gk int, p PhotonicParams) (NetworkConfig, error) {
	return spacxnet.New(m, n, gef, gk, p)
}

// ExploreGranularity evaluates every power-of-two broadcast-granularity pair
// for a layer on an M x N machine and returns all points plus the index of
// the best (Section V's fine-grained-mapping exploration).
func ExploreGranularity(l Layer, m, n int) ([]GranularityPoint, int, error) {
	return dataflow.ExploreGranularity(l, m, n)
}

// GranularityPoint is one candidate configuration's spatial utilization.
type GranularityPoint = dataflow.GranularityPoint

// ExplainMapping renders a layer's mapping decisions (spatial occupancy,
// loop structure, flow broadcast widths, memory traffic) as text.
func ExplainMapping(r LayerResult, acc Accelerator) string {
	return dataflow.Explain(r.Profile, acc.Arch)
}
