#!/usr/bin/env bash
# End-to-end smoke of spacx-serve under the race detector: concurrent mixed
# /v1 requests with heavy duplication (so the response cache and
# singleflight engage), metric assertions, an async job followed over SSE to
# completion with its trace asserted on /traces/{id}, a kill/restart cycle
# that must resurrect the job list from the ledger, then a SIGTERM drain
# that must flip /readyz to 503 and exit cleanly within the linger window.
#
# Invoked by `make api-smoke` and the CI workflow; run from the repo root.
set -euo pipefail

ADDR="${SPACX_SERVE_ADDR:-127.0.0.1:19801}"
BIN="${TMPDIR:-/tmp}/spacx-serve-race"
OUT="${TMPDIR:-/tmp}/spacx-serve-smoke"

go build -race -o "$BIN" ./cmd/spacx-serve
rm -rf "$OUT"
mkdir -p "$OUT"

LEDGER="$OUT/jobs.jsonl"
"$BIN" -http "$ADDR" -j 4 -queue 128 -http-linger 5s -jobs-ledger "$LEDGER" 2>"$OUT/serve.log" &
server=$!
trap 'kill -9 "$server" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  sleep 0.1
done
curl -sf "http://$ADDR/readyz" >/dev/null
curl -sf "http://$ADDR/v1/models" | grep -q '"alexnet"'
curl -sf "http://$ADDR/v1/accelerators" | grep -q '"spacx"'

# ~50 concurrent requests across a handful of distinct queries: every query
# repeats, so duplicates must coalesce in flight or hit the cache.
bodies=(
  '{"model": "alexnet", "accel": "spacx"}'
  '{"model": "alexnet", "accel": "spacx"}'
  '{"model": "alexnet", "accel": "simba"}'
  '{"model": "mobilenetv2", "accel": "spacx", "mode": "layer"}'
  '{"model": "alexnet", "accel": "popstar", "batch": 4}'
)
pids=()
n=0
for _ in $(seq 1 10); do
  for body in "${bodies[@]}"; do
    n=$((n + 1))
    curl -s -o "$OUT/resp.$n" -w '%{http_code}' -X POST -d "$body" \
      "http://$ADDR/v1/simulate" > "$OUT/code.$n" &
    pids+=($!)
  done
done
for pid in "${pids[@]}"; do
  wait "$pid"
done

for f in "$OUT"/code.*; do
  if ! grep -qx 200 "$f"; then
    echo "non-200 response: $f = $(cat "$f"), body ${f/code/resp}:"
    cat "${f/code/resp}"
    exit 1
  fi
done
# Duplicated queries return byte-identical bodies (resp.1 and resp.2 are the
# same alexnet-on-spacx request).
cmp -s "$OUT/resp.1" "$OUT/resp.2" || { echo "duplicate responses differ"; exit 1; }

# A sweep resolves through the same cache, so every point succeeds.
curl -sf -X POST -d '{"models": ["alexnet"], "accels": ["spacx", "simba"]}' \
  "http://$ADDR/v1/sweep" | grep -q '"exec_sec"'

# Thermal co-simulation: a short feedback-on replay answers with the
# schema-versioned report, and its gauges land on /metrics below.
curl -sf -X POST -d '{"model": "alexnet", "mode": "layer", "profile": "step", "steps": 60}' \
  "http://$ADDR/v1/thermal" > "$OUT/thermal.json"
python3 - "$OUT/thermal.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["Schema"] == "spacx.thermal-replay/v1", r["Schema"]
assert len(r["Series"]) == 60, len(r["Series"])
assert r["Series"][-1]["MaxChipletK"] > r["CalibrationK"], "no temperature rise"
PY

# Duplicates collapsed: the cache-hit counter moved, and far fewer engine
# runs happened than requests were made.
curl -sf "http://$ADDR/metrics" > "$OUT/metrics.prom"
grep -q '^spacx_serve_requests_total' "$OUT/metrics.prom"
hits=$(awk '$1 == "spacx_serve_cache_hits_total" {print $2}' "$OUT/metrics.prom")
awk -v h="${hits:-0}" 'BEGIN { if (h + 0 <= 0) { print "no cache hits recorded"; exit 1 } }'
runs=$(awk '$1 == "spacx_serve_engine_runs_total" {print $2}' "$OUT/metrics.prom")
awk -v r="${runs:-0}" -v n="$n" 'BEGIN { if (r + 0 <= 0 || r + 0 >= n) { printf "engine runs %s out of bounds (0, %d)\n", r, n; exit 1 } }'
grep -q '^spacx_thermal_max_chiplet_kelvin' "$OUT/metrics.prom" \
  || { echo "no spacx_thermal_* gauges on /metrics"; exit 1; }
grep -q '^spacx_thermal_steps_total' "$OUT/metrics.prom" \
  || { echo "no spacx_thermal_steps_total counter on /metrics"; exit 1; }

# Every /v1 response carries a trace id whose span tree is retrievable.
trace=$(curl -sf -D - -o /dev/null -X POST -d '{"model": "alexnet", "accel": "spacx"}' \
  "http://$ADDR/v1/simulate" | awk 'tolower($1) == "x-spacx-trace:" {print $2}' | tr -d '\r')
test -n "$trace" || { echo "no X-Spacx-Trace header on /v1/simulate"; exit 1; }
curl -sf "http://$ADDR/traces/$trace" > "$OUT/trace.json"
grep -q '"serve:simulate"' "$OUT/trace.json" || { echo "trace $trace has no serve:simulate span"; exit 1; }
grep -q '"cache:lookup"' "$OUT/trace.json" || { echo "trace $trace has no cache:lookup span"; exit 1; }

# Async job: submit a sweep, follow its SSE stream to the terminal event,
# then fetch the finished result.
job=$(curl -sf -X POST -d '{"models": ["alexnet"], "accels": ["spacx", "simba"]}' \
  "http://$ADDR/v1/jobs" | python3 -c 'import json, sys; print(json.load(sys.stdin)["id"])')
test -n "$job" || { echo "job submission returned no id"; exit 1; }
curl -sf -N --max-time 30 "http://$ADDR/v1/jobs/$job/events" > "$OUT/events.sse" || true
grep -q '^event: progress$' "$OUT/events.sse" || { echo "SSE stream had no progress event"; cat "$OUT/events.sse"; exit 1; }
grep -q '^event: done$' "$OUT/events.sse" || { echo "SSE stream never reached done"; cat "$OUT/events.sse"; exit 1; }
curl -sf "http://$ADDR/v1/jobs/$job" > "$OUT/job.json"
python3 - "$OUT/job.json" <<'PY'
import json, sys
j = json.load(open(sys.argv[1]))
assert j["state"] == "done", j["state"]
assert j["done_points"] == j["total_points"] == 2, (j["done_points"], j["total_points"])
assert j["trace_id"], "job has no trace id"
assert j["result"]["points"], "done job has no result points"
PY
jobtrace=$(python3 -c 'import json, sys; print(json.load(open(sys.argv[1]))["trace_id"])' "$OUT/job.json")
curl -sf "http://$ADDR/traces/$jobtrace" | grep -q '"job:sweep"' \
  || { echo "job trace $jobtrace has no job:sweep span"; exit 1; }

# Kill the server outright and restart it on the same ledger: the finished
# job must still be listed (recovered from its newest ledger line).
kill -9 "$server" 2>/dev/null || true
wait "$server" 2>/dev/null || true
"$BIN" -http "$ADDR" -j 4 -queue 128 -http-linger 5s -jobs-ledger "$LEDGER" 2>>"$OUT/serve.log" &
server=$!
trap 'kill -9 "$server" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  sleep 0.1
done
curl -sf "http://$ADDR/v1/jobs" > "$OUT/jobs-after-restart.json"
python3 - "$OUT/jobs-after-restart.json" "$job" <<'PY'
import json, sys
jobs = json.load(open(sys.argv[1]))
match = [j for j in jobs if j["id"] == sys.argv[2]]
assert match, f"job {sys.argv[2]} missing after restart: {jobs}"
assert match[0]["state"] == "done" and match[0]["recovered"], match[0]
PY

# SIGTERM: readiness flips to 503 while the server drains, a final scrape
# releases the linger, and the process exits 0 well inside the window.
kill -TERM "$server"
start=$(date +%s)
ready=0
for _ in $(seq 1 100); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz" || true)
  if [ "$code" = 503 ]; then ready=1; break; fi
  sleep 0.1
done
test "$ready" = 1 || { echo "/readyz never flipped to 503 during drain"; exit 1; }
curl -sf "http://$ADDR/metrics" >/dev/null || true
status=0
wait "$server" || status=$?
elapsed=$(( $(date +%s) - start ))
test "$status" -eq 0 || { echo "spacx-serve exited $status"; exit 1; }
test "$elapsed" -le 10 || { echo "drain took ${elapsed}s, linger window is 5s"; exit 1; }
if grep -q 'DATA RACE' "$OUT/serve.log"; then
  echo "race detected:"; cat "$OUT/serve.log"; exit 1
fi

# --- Distributed sweep fabric ------------------------------------------------
# A coordinator plus two spacx-worker processes run the same sweep the
# coordinator first computed locally (no workers attached yet = local
# fallback). One worker is kill -9'd mid-sweep; the survivor absorbs the
# orphaned leases and the distributed result must equal the local one.
FADDR="${SPACX_FABRIC_ADDR:-127.0.0.1:19802}"
WBIN="${TMPDIR:-/tmp}/spacx-worker-race"
go build -race -o "$WBIN" ./cmd/spacx-worker

"$BIN" -http "$FADDR" -j 4 -fabric -lease-points 1 -lease-ttl 2s -worker-ttl 2s \
  -http-linger 5s 2>"$OUT/fabric.log" &
server=$!
trap 'kill -9 "$server" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  curl -sf "http://$FADDR/healthz" >/dev/null && break
  sleep 0.1
done

sweep='{"models": ["alexnet", "mobilenetv2", "densenet201", "efficientnetb7"], "accels": ["spacx", "simba"], "modes": ["whole", "layer"]}'

# Golden: no workers are attached, so the job computes locally.
gold=$(curl -sf -X POST -d "$sweep" "http://$FADDR/v1/jobs" \
  | python3 -c 'import json, sys; print(json.load(sys.stdin)["id"])')
curl -sf -N --max-time 120 "http://$FADDR/v1/jobs/$gold/events" | grep -q '^event: done$' \
  || { echo "local golden job never finished"; exit 1; }
curl -sf "http://$FADDR/v1/jobs/$gold" > "$OUT/golden-job.json"

# Attach two workers and wait for both registrations.
"$WBIN" -coordinator "http://$FADDR" -name w1 -j 2 -poll 500ms -retry 100ms 2>"$OUT/w1.log" &
w1=$!
"$WBIN" -coordinator "http://$FADDR" -name w2 -j 2 -poll 500ms -retry 100ms 2>"$OUT/w2.log" &
w2=$!
disown "$w1" "$w2" # kill -9 below is deliberate; keep job-control notices out of the log
trap 'kill -9 "$server" "$w1" "$w2" 2>/dev/null || true' EXIT
fleet=0
for _ in $(seq 1 100); do
  fleet=$(curl -sf "http://$FADDR/fabric/v1/status" \
    | python3 -c 'import json, sys; print(len(json.load(sys.stdin)["workers"]))' || echo 0)
  [ "$fleet" = 2 ] && break
  sleep 0.1
done
test "$fleet" = 2 || { echo "fleet never reached 2 workers"; exit 1; }

# /fleet must agree: both workers present and live, with build info echoed.
curl -sf "http://$FADDR/fleet" > "$OUT/fleet.json"
python3 - "$OUT/fleet.json" <<'PY'
import json, sys
f = json.load(open(sys.argv[1]))
names = sorted(w["name"] for w in f["workers"])
assert names == ["w1", "w2"], names
assert all(w["live"] for w in f["workers"]), f["workers"]
assert all(w.get("go_version") for w in f["workers"]), "workers registered without build info"
PY

# The same sweep, distributed; kill -9 one worker as soon as points are
# moving through the fleet.
job=$(curl -sf -X POST -d "$sweep" "http://$FADDR/v1/jobs" \
  | python3 -c 'import json, sys; print(json.load(sys.stdin)["id"])')
for _ in $(seq 1 200); do
  done_pts=$(curl -sf "http://$FADDR/v1/jobs/$job" \
    | python3 -c 'import json, sys; print(json.load(sys.stdin)["done_points"])' || echo 0)
  [ "${done_pts:-0}" -ge 1 ] && break
  sleep 0.05
done
kill -9 "$w2" 2>/dev/null || true
curl -sf -N --max-time 120 "http://$FADDR/v1/jobs/$job/events" | grep -q '^event: done$' \
  || { echo "distributed job never finished after worker kill"; exit 1; }
curl -sf "http://$FADDR/v1/jobs/$job" > "$OUT/fabric-job.json"

python3 - "$OUT/golden-job.json" "$OUT/fabric-job.json" <<'PY'
import json, sys
gold = json.load(open(sys.argv[1]))
dist = json.load(open(sys.argv[2]))
assert gold["state"] == dist["state"] == "done", (gold["state"], dist["state"])
assert dist["done_points"] == dist["total_points"] == gold["total_points"], dist
# Byte-identity is proven exhaustively by the Go harness; here the two
# result documents (identical key order from the same encoder) must
# re-serialize identically.
g, d = json.dumps(gold["result"]), json.dumps(dist["result"])
assert g == d, "distributed sweep result differs from local golden"
PY

# The distributed job's trace must be one stitched tree: worker-originated
# spans (shipped back over the fabric protocol) hanging under the
# coordinator's lease spans. The final batch's spans ride the upload that
# completes the job, so poll briefly.
jobtrace=$(python3 -c 'import json, sys; print(json.load(open(sys.argv[1]))["trace_id"])' "$OUT/fabric-job.json")
test -n "$jobtrace" || { echo "fabric job has no trace id"; exit 1; }
stitched=0
for _ in $(seq 1 50); do
  curl -sf "http://$FADDR/traces/$jobtrace" > "$OUT/fabric-trace.json" || true
  if grep -q '"worker:lease"' "$OUT/fabric-trace.json" && grep -q '"worker": *"w1"' "$OUT/fabric-trace.json"; then
    stitched=1
    break
  fi
  sleep 0.1
done
test "$stitched" = 1 || { echo "trace $jobtrace has no stitched worker spans:"; cat "$OUT/fabric-trace.json"; exit 1; }

# The flight recorder saw the whole story: grants for both workers, and —
# once the killed worker's TTL lapses — its departure (or at least the
# expiry of a lease it still held).
deadseen=0
for _ in $(seq 1 100); do
  curl -sf "http://$FADDR/fleet/events" > "$OUT/fleet-events.json" || true
  if grep -q '"lease:grant"' "$OUT/fleet-events.json" \
    && grep -Eq '"(worker:leave|lease:expire)"' "$OUT/fleet-events.json"; then
    deadseen=1
    break
  fi
  sleep 0.1
done
test "$deadseen" = 1 || { echo "flight recorder missing fabric lifecycle events:"; cat "$OUT/fleet-events.json"; exit 1; }

# Within one worker TTL, /fleet must report the killed worker dead.
w2dead=0
for _ in $(seq 1 100); do
  w2dead=$(curl -sf "http://$FADDR/fleet" | python3 -c '
import json, sys
f = json.load(sys.stdin)
dead = [w for w in f["workers"] if w["name"] == "w2" and not w["live"]]
print(1 if dead or not any(w["name"] == "w2" for w in f["workers"]) else 0)' || echo 0)
  [ "$w2dead" = 1 ] && break
  sleep 0.1
done
test "$w2dead" = 1 || { echo "/fleet never marked killed worker w2 dead"; exit 1; }

# Thermal replay on the fabric coordinator: a sustained full-load step
# profile must saturate the heaters and throttle, and both transitions must
# land on the same flight ring /fleet/events dumps.
curl -sf -X POST -d '{"model": "alexnet", "mode": "layer", "profile": "step", "steps": 180}' \
  "http://$FADDR/v1/thermal" > "$OUT/fabric-thermal.json"
python3 - "$OUT/fabric-thermal.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
last = r["Series"][-1]
assert last["Saturated"] and last["Throttle"] < 1, last
assert r["Summary"]["CapacityLossPct"] > 0, r["Summary"]
PY
curl -sf "http://$FADDR/fleet/events" > "$OUT/thermal-events.json"
grep -q '"thermal:heater-saturated"' "$OUT/thermal-events.json" \
  || { echo "/fleet/events missing thermal:heater-saturated"; exit 1; }
grep -q '"thermal:throttle-on"' "$OUT/thermal-events.json" \
  || { echo "/fleet/events missing thermal:throttle-on"; exit 1; }

kill -9 "$w1" 2>/dev/null || true
kill -TERM "$server"
wait "$server" || { echo "fabric coordinator exited non-zero"; exit 1; }
for f in "$OUT/fabric.log" "$OUT/w1.log"; do
  if grep -q 'DATA RACE' "$f"; then
    echo "race detected in $f:"; cat "$f"; exit 1
  fi
done
trap - EXIT
echo "api smoke ok ($n simulate requests, $hits cache hits, $runs engine runs, drain ${elapsed}s, fabric job $job survived worker kill)"
