package spacx_test

import (
	"fmt"

	"spacx"
)

// ExampleRun simulates a full ResNet-50 inference pass on the three
// evaluation accelerators and reports who wins — the Figure 15 headline.
func ExampleRun() {
	model := spacx.ResNet50()
	simba, _ := spacx.Run(spacx.Simba(), model, spacx.WholeInference)
	popstar, _ := spacx.Run(spacx.POPSTAR(), model, spacx.WholeInference)
	sx, _ := spacx.Run(spacx.SPACX(), model, spacx.WholeInference)

	fmt.Println("SPACX faster than POPSTAR:", sx.ExecSec < popstar.ExecSec)
	fmt.Println("POPSTAR faster than Simba:", popstar.ExecSec < simba.ExecSec)
	fmt.Println("SPACX most energy-efficient:",
		sx.TotalEnergy < popstar.TotalEnergy && sx.TotalEnergy < simba.TotalEnergy)
	// Output:
	// SPACX faster than POPSTAR: true
	// POPSTAR faster than Simba: true
	// SPACX most energy-efficient: true
}

// ExampleRunLayer inspects a single layer's mapping.
func ExampleRunLayer() {
	layer := spacx.ResNet50().Layers[2] // the first 3x3 bottleneck conv
	r, _ := spacx.RunLayer(spacx.SPACX(), layer, spacx.WholeInference)
	fmt.Println("layer:", layer.Name)
	fmt.Println("active PEs:", r.Profile.ActivePEs)
	fmt.Println("flows:", len(r.Profile.Flows))
	// Output:
	// layer: L3_res2_branch2b
	// active PEs: 1024
	// flows: 3
}

// ExamplePowerSurface locates the power minima of the broadcast-granularity
// design space (Figures 19/20).
func ExamplePowerSurface() {
	pts, _ := spacx.PowerSurface(32, 32, spacx.ModerateParams())
	var laserMin, overallMin spacx.PowerPoint
	for _, p := range pts {
		if p.GK < 4 || p.GEF < 4 {
			continue
		}
		if laserMin.GK == 0 || p.LaserW < laserMin.LaserW {
			laserMin = p
		}
		if overallMin.GK == 0 || p.OverallW() < overallMin.OverallW() {
			overallMin = p
		}
	}
	fmt.Printf("laser minimum at (k=%d, e/f=%d)\n", laserMin.GK, laserMin.GEF)
	fmt.Printf("overall minimum at (k=%d, e/f=%d)\n", overallMin.GK, overallMin.GEF)
	// Output:
	// laser minimum at (k=4, e/f=4)
	// overall minimum at (k=16, e/f=16)
}

// ExampleNewNetworkConfig reproduces the Table I topology algebra.
func ExampleNewNetworkConfig() {
	for _, g := range [][2]int{{8, 8}, {4, 8}, {8, 4}, {4, 4}} {
		cfg, _ := spacx.NewNetworkConfig(8, 8, g[0], g[1], spacx.ModerateParams())
		fmt.Printf("e/f=%d k=%d: %d waveguides, %d wavelengths, %d interface MRRs\n",
			g[0], g[1], cfg.GlobalWaveguides(), cfg.Wavelengths(), cfg.InterfaceMRRs())
	}
	// Output:
	// e/f=8 k=8: 1 waveguides, 16 wavelengths, 80 interface MRRs
	// e/f=4 k=8: 2 waveguides, 12 wavelengths, 80 interface MRRs
	// e/f=8 k=4: 2 waveguides, 12 wavelengths, 96 interface MRRs
	// e/f=4 k=4: 4 waveguides, 8 wavelengths, 96 interface MRRs
}
